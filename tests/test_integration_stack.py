"""Cross-layer integration tests: one scenario per verification stack
path the paper describes (Figure 1), exercised end to end.
"""

import pytest

from repro.core import run_interpreter
from repro.core.image import build_memory
from repro.riscv import Assembler, CpuState, RiscvInterp
from repro.sym import new_context, prove, sym_implies, verify_vcs

# The full monitor/JIT suites take minutes; CI runs them in a
# separate job after the fast tier passes.
pytestmark = pytest.mark.slow


class TestBinaryToTheorem:
    """C-like source -> compiler -> binary -> lifted verifier -> SMT."""

    def test_compiled_min_function_refines_spec(self):
        from repro.cc import Arg, Cmp, Func, If, Program, Return, compile_program
        from repro.sym import ite

        func = Func(
            "minimum",
            2,
            (If(Cmp("<u", Arg(0), Arg(1)), (Return(Arg(0)),), (Return(Arg(1)),)),),
            locals=(),
        )
        for opt in (0, 1, 2):
            asm = Assembler(base=0x1000, xlen=32)
            asm.data_symbol("stack", 0x9000, 128, ("array", 32, ("cell", 4)))
            asm.label("entry")
            asm.li("sp", 0x9000 + 128)
            asm.call("minimum")
            asm.mret()
            compile_program(Program(funcs=[func]), asm, opt)
            image = asm.assemble()
            with new_context() as ctx:
                cpu = CpuState.symbolic(32, 0x1000, build_memory(image, addr_width=32))
                a, b = cpu.reg(10), cpu.reg(11)
                final = run_interpreter(RiscvInterp(image, xlen=32), cpu).merged()
                spec = ite(a < b, a, b)
                assert prove(final.reg(10) == spec).proved, f"O{opt}"
                assert verify_vcs(ctx).proved

    def test_same_source_all_levels_agree(self):
        """-O0/-O1/-O2 binaries of the same source are pairwise
        equivalent under symbolic execution — a translation-validation
        shape (§2 discusses Sewell-style translation validation)."""
        from repro.cc import Arg, BinOp, Const, Func, Program, compile_program
        from repro.cc.ast import Return

        func = Func(
            "mix", 2, (Return(BinOp("^", BinOp("+", Arg(0), Const(13)), Arg(1))),), locals=()
        )
        results = []
        with new_context():
            from repro.sym import named_bv

            a = named_bv("is_a", 32)
            b = named_bv("is_b", 32)
            for opt in (0, 1, 2):
                asm = Assembler(base=0x1000, xlen=32)
                asm.data_symbol("stack", 0x9000, 128, ("array", 32, ("cell", 4)))
                asm.label("entry")
                asm.li("sp", 0x9000 + 128)
                asm.call("mix")
                asm.mret()
                compile_program(Program(funcs=[func]), asm, opt)
                image = asm.assemble()
                cpu = CpuState.symbolic(32, 0x1000, build_memory(image, addr_width=32))
                cpu.set_reg(10, a)
                cpu.set_reg(11, b)
                final = run_interpreter(RiscvInterp(image, xlen=32), cpu).merged()
                results.append(final.reg(10))
            assert prove(results[0] == results[1]).proved
            assert prove(results[1] == results[2]).proved


class TestJitPipelineIntegration:
    """BPF bytes -> decode -> JIT -> RISC-V -> equivalence theorem."""

    def test_bytes_to_equivalence_theorem(self):
        from repro.bpf import alu, decode_program, encode_program
        from repro.bpf_jit import RvJit, check_rv_insn

        raw = encode_program([alu("xor", 1, ("r", 2), alu64=False)])
        insn = decode_program(raw)[0]
        assert check_rv_insn(insn, RvJit()).ok


class TestMonitorCrossChecks:
    """Spec-level and binary-level artifacts agree with each other."""

    def test_certikos_ri_spec_and_impl_aligned(self):
        """A state satisfying the impl RI abstracts to a state
        satisfying the spec invariant."""
        from repro.certikos import CertikosVerifier
        from repro.certikos.invariants import abstract, rep_invariant
        from repro.certikos.spec import state_invariant

        v = CertikosVerifier(opt=1)
        with new_context():
            cpu = v.make_cpu()
            assert prove(
                sym_implies(rep_invariant(cpu), state_invariant(abstract(cpu)))
            ).proved

    def test_komodo_ri_spec_and_impl_aligned(self):
        from repro.komodo import KomodoVerifier
        from repro.komodo.invariants import abstract, rep_invariant
        from repro.komodo.spec import state_invariant

        v = KomodoVerifier(opt=1)
        with new_context():
            cpu = v.make_cpu()
            assert prove(
                sym_implies(rep_invariant(cpu), state_invariant(abstract(cpu)))
            ).proved
