"""Keystone case-study tests (§7): UB bugs, interface findings."""

from repro.core import prove_invariant_step
from repro.keystone import (
    HOST,
    KEYSTONE_BUG_IDS,
    KeystoneState,
    prove_enclave_independence,
    prove_pmp_sufficient,
    scan_for_ub,
    spec_create,
    spec_destroy,
    spec_exit,
    spec_run,
    spec_stop,
    state_invariant,
)
from repro.sym import fresh_bv, new_context, prove, sym_implies


class TestUbScanning:
    def test_fixed_monitor_is_ub_free(self):
        assert scan_for_ub() == []

    def test_oversized_shift_found_on_all_three_calls(self):
        findings = scan_for_ub({"oversized-shift"})
        assert len(findings) == 3
        assert all("oversized" in f.message for f in findings)
        assert {f.function for f in findings} == {
            "sbi_create_enclave",
            "sbi_run_enclave",
            "sbi_stop_enclave",
        }

    def test_buffer_overflow_found_on_all_three_calls(self):
        findings = scan_for_ub({"buffer-overflow"})
        assert len(findings) >= 3
        assert {f.function for f in findings} == {
            "sbi_create_enclave",
            "sbi_run_enclave",
            "sbi_stop_enclave",
        }

    def test_both_bugs_together(self):
        findings = scan_for_ub(set(KEYSTONE_BUG_IDS))
        kinds = {f.message for f in findings}
        assert any("oversized" in k for k in kinds)
        assert any("bounds" in k or "region" in k for k in kinds)


class TestInterfaceFindings:
    def test_enclave_independence_holds_for_fixed_spec(self):
        assert prove_enclave_independence(allow_nested_create=False).proved

    def test_nested_create_violates_independence(self):
        """The flaw reported to (and fixed by) Keystone's developers."""
        result = prove_enclave_independence(allow_nested_create=True)
        assert not result.proved
        assert result.counterexample is not None

    def test_pmp_alone_isolates(self):
        """The second suggestion: page-table checks are unnecessary."""
        assert prove_pmp_sufficient().proved


class TestSpecSanity:
    def test_invariant_preserved_by_lifecycle(self):
        eid = fresh_bv("tk.eid", 32)
        region = fresh_bv("tk.region", 32)
        payload = fresh_bv("tk.payload", 32)
        steps = {
            "create": lambda s: spec_create(s, eid, region, payload),
            "run": lambda s: spec_run(s, eid),
            "stop": lambda s: spec_stop(s, eid),
            "destroy": lambda s: spec_destroy(s, eid),
            "exit": lambda s: spec_exit(s),
        }
        for name, step in steps.items():
            r = prove_invariant_step(f"keystone.{name}", state_invariant, step, KeystoneState)
            assert r.proved, f"{name}: {r.describe()}"

    def test_destroy_erases_measurement(self):
        with new_context():
            s = KeystoneState.fresh("tk.s")
            eid = fresh_bv("tk.eid2", 32)
            t = spec_destroy(s, eid)
            for i in range(len(t.measure)):
                gone = sym_implies(
                    state_invariant(s) & (eid == i) & (t.status[i] == 0) & (s.status[i] == 3),
                    t.measure[i] == 0,
                )
                assert prove(gone).proved

    def test_only_host_runs_enclaves(self):
        with new_context():
            s = KeystoneState.fresh("tk.s2")
            eid = fresh_bv("tk.eid3", 32)
            t = spec_run(s, eid)
            changed = t.cur != s.cur
            assert prove(sym_implies(changed, s.cur == HOST)).proved
