"""Tests for the LLVM verifier (§5): semantics, merging, UB checks."""

from repro.core.image import Image, Symbol, build_memory
from repro.llvm import (
    Bin,
    Block,
    Br,
    Cast,
    CondBr,
    Const,
    Function,
    Gep,
    GlobalRef,
    Icmp,
    Load,
    Local,
    Param,
    Ret,
    Select,
    Store,
    run_function,
)
from repro.sym import ite, new_context, prove, sym_implies, verify_vcs


def fn(blocks, num_params=2, entry="entry"):
    return Function("f", num_params, {b.label: b for b in blocks}, entry=entry)


def mem_with(name, addr, size, shape):
    img = Image(base=0, word_size=4, words={}, symbols=[Symbol(name, addr, size, "object", shape)])
    return build_memory(img, addr_width=32)


class TestStraightLine:
    def test_arith(self):
        f = fn([
            Block("entry", [
                Bin("t", "add", Param(0), Param(1)),
                Bin("u", "mul", Local("t"), Const(2)),
            ], Ret(Local("u"))),
        ])
        with new_context():
            final = run_function(f)
            a, b = final.params
            assert prove(final.retval == (a + b) * 2).proved

    def test_icmp_and_select(self):
        f = fn([
            Block("entry", [
                Icmp("c", "ult", Param(0), Param(1)),
                Select("m", Local("c"), Param(0), Param(1)),
            ], Ret(Local("m"))),
        ])
        with new_context():
            final = run_function(f)
            a, b = final.params
            assert prove(final.retval == ite(a < b, a, b)).proved

    def test_casts(self):
        f = fn([
            Block("entry", [
                Cast("t", "trunc", Param(0), 8),
                Cast("z", "zext", Local("t"), 32),
            ], Ret(Local("z"))),
        ], num_params=1)
        with new_context():
            final = run_function(f)
            assert prove(final.retval == (final.params[0] & 0xFF)).proved


class TestControlFlow:
    def test_diamond_merges(self):
        # Build explicitly (locals flow through the merge).
        f = fn([
            Block("entry", [Icmp("c", "eq", Param(0), Const(0))],
                  CondBr(Local("c"), "zero", "nonzero")),
            Block("zero", [Bin("r", "add", Param(1), Const(1))], Br("join")),
            Block("nonzero", [Bin("r", "add", Param(1), Const(2))], Br("join")),
            Block("join", [], Ret(Local("r"))),
        ])
        with new_context():
            final = run_function(f)
            a, b = final.params
            assert prove(sym_implies(a == 0, final.retval == b + 1)).proved
            assert prove(sym_implies(a != 0, final.retval == b + 2)).proved

    def test_bounded_loop(self):
        f = fn([
            Block("entry", [Bin("i", "add", Const(0), Const(0)),
                            Bin("acc", "add", Const(0), Const(0))], Br("head")),
            Block("head", [Icmp("c", "ult", Local("i"), Const(4))],
                  CondBr(Local("c"), "body", "done")),
            Block("body", [
                Bin("acc", "add", Local("acc"), Local("i")),
                Bin("i", "add", Local("i"), Const(1)),
            ], Br("head")),
            Block("done", [], Ret(Local("acc"))),
        ], num_params=0)
        with new_context():
            final = run_function(f)
            assert final.retval.as_int() == 6  # 0+1+2+3


class TestMemory:
    SHAPE = ("array", 4, ("cell", 4))

    def test_load_store_via_gep(self):
        f = fn([
            Block("entry", [
                Gep("p", GlobalRef("tbl"), Param(0), 4),
                Store(Local("p"), Param(1)),
                Gep("q", GlobalRef("tbl"), Const(2), 4),
                Load("v", Local("q"), 4),
            ], Ret(Local("v"))),
        ])
        with new_context() as ctx:
            mem = mem_with("tbl", 0x1000, 16, self.SHAPE)
            final = run_function(f, mem=mem)
            idx, val = final.params
            assert prove(sym_implies(idx == 2, final.retval == val)).proved
            # unchecked index -> bounds VC fails
            assert not verify_vcs(ctx).proved

    def test_bounds_checked_access_verifies(self):
        f = fn([
            Block("entry", [Icmp("c", "ult", Param(0), Const(4))],
                  CondBr(Local("c"), "do", "skip")),
            Block("do", [
                Gep("p", GlobalRef("tbl"), Param(0), 4),
                Store(Local("p"), Param(1)),
            ], Br("skip")),
            Block("skip", [], Ret(Const(0, 32))),
        ])
        with new_context() as ctx:
            final = run_function(f, mem=mem_with("tbl", 0x1000, 16, self.SHAPE))
            assert verify_vcs(ctx).proved


class TestUndefinedBehavior:
    def test_oversized_shift_flagged(self):
        f = fn([
            Block("entry", [Bin("r", "shl", Const(1), Param(0))], Ret(Local("r"))),
        ], num_params=1)
        with new_context() as ctx:
            run_function(f)
            result = verify_vcs(ctx)
        assert not result.proved
        assert "oversized" in result.failed_vc.message

    def test_division_by_zero_flagged(self):
        f = fn([
            Block("entry", [Bin("r", "udiv", Param(0), Param(1))], Ret(Local("r"))),
        ])
        with new_context() as ctx:
            run_function(f)
            assert not verify_vcs(ctx).proved

    def test_nsw_overflow_flagged(self):
        f = fn([
            Block("entry", [Bin("r", "add", Param(0), Param(1), flags=("nsw",))],
                  Ret(Local("r"))),
        ])
        with new_context() as ctx:
            run_function(f)
            assert not verify_vcs(ctx).proved

    def test_guarded_shift_verifies(self):
        f = fn([
            Block("entry", [Icmp("c", "ult", Param(0), Const(32))],
                  CondBr(Local("c"), "do", "skip")),
            Block("do", [Bin("r", "shl", Const(1), Param(0))], Br("skip")),
            Block("skip", [], Ret(Const(0, 32))),
        ], num_params=1)
        with new_context() as ctx:
            run_function(f)
            assert verify_vcs(ctx).proved
