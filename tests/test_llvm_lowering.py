"""The §6.4 incremental strategy: verify monitor handlers at the LLVM
level with the same specification used for the binary proof."""


from repro.cc import (
    Arg,
    Assign,
    BinOp,
    Cmp,
    Const,
    Func,
    GlobalAddr,
    If,
    Return,
    Store,
    Var,
    While,
)
from repro.cc.llvm_lowering import lower_function, lower_program
from repro.core.image import Image, Symbol, build_memory
from repro.llvm import run_function
from repro.sym import bv_val, ite, new_context, prove, sym_implies, verify_vcs


def mem_for(data):
    symbols = [Symbol(n, a, s, "object", sh) for n, a, s, sh in data]
    return build_memory(Image(base=0, word_size=4, words={}, symbols=symbols), addr_width=32)


class TestLowering:
    def test_arith_function(self):
        f = Func("poly", 2, (Return(BinOp("+", BinOp("*", Arg(0), Const(3)), Arg(1))),), locals=())
        lf = lower_function(f)
        with new_context():
            final = run_function(lf)
            a, b = final.params
            assert prove(final.retval == a * 3 + b).proved

    def test_if_else(self):
        f = Func(
            "max",
            2,
            (
                If(Cmp("<u", Arg(0), Arg(1)), (Return(Arg(1)),), (Return(Arg(0)),)),
            ),
            locals=(),
        )
        with new_context():
            final = run_function(lower_function(f))
            a, b = final.params
            assert prove(final.retval == ite(a < b, b, a)).proved

    def test_locals_and_loop(self):
        f = Func(
            "tri",
            1,
            (
                Assign("acc", Const(0)),
                Assign("i", Const(0)),
                While(
                    Cmp("<u", Var("i"), Const(4)),
                    (
                        Assign("acc", BinOp("+", Var("acc"), Var("i"))),
                        Assign("i", BinOp("+", Var("i"), Const(1))),
                    ),
                ),
                Return(Var("acc")),
            ),
            locals=("acc", "i"),
        )
        with new_context():
            final = run_function(lower_function(f))
            assert final.retval.as_int() == 6

    def test_memory_access(self):
        data = [("tbl", 0x1000, 16, ("array", 4, ("cell", 4)))]
        f = Func(
            "bump",
            1,
            (
                If(
                    Cmp("<u", Arg(0), Const(4)),
                    (
                        Store(
                            BinOp("+", GlobalAddr("tbl"), BinOp("*", Arg(0), Const(4))),
                            Const(7),
                        ),
                    ),
                ),
                Return(Const(0)),
            ),
            locals=(),
        )
        with new_context() as ctx:
            final = run_function(lower_function(f), mem=mem_for(data))
            idx = final.params[0]
            got = final.mem.region("tbl").block.load(bv_val(8, 32), 4, final.mem.opts)
            assert prove(sym_implies(idx == 2, got == 7)).proved
            assert verify_vcs(ctx).proved  # bounds check covers the store


class TestIncrementalCertikos:
    """Verify the real CertiKOS^s handlers at the LLVM level against
    the same functional spec the binary proof uses (§6.4)."""

    def test_get_quota_llvm_level(self):
        from repro.certikos.impl import _handlers
        from repro.certikos.layout import DATA_SYMBOLS, NPROC

        module = lower_program(_handlers())
        func = module.functions["c_get_quota"]
        with new_context() as ctx:
            mem = mem_for(DATA_SYMBOLS)
            final = run_function(func, params=[], mem=mem)
            # Same spec shape as the binary-level proof: the return
            # value is procs[current].quota.
            current = mem.region("current").block.load(bv_val(0, 32), 4, mem.opts)
            expected = mem.region("procs").block.load(bv_val((NPROC - 1) * 8 + 4, 32), 4, mem.opts)
            for p in range(NPROC - 2, -1, -1):
                expected = ite(
                    current == p,
                    mem.region("procs").block.load(bv_val(p * 8 + 4, 32), 4, mem.opts),
                    expected,
                )
            assert prove(final.retval == expected, assumptions=[current < NPROC]).proved

    def test_spawn_llvm_level_rejects_unowned_child(self):
        from repro.certikos.impl import _handlers
        from repro.certikos.layout import DATA_SYMBOLS, NCHILD

        module = lower_program(_handlers())
        func = module.functions["c_spawn"]
        with new_context() as ctx:
            mem = mem_for(DATA_SYMBOLS)
            final = run_function(func, mem=mem)
            child = final.params[0]
            current = mem.region("current").block.load(bv_val(0, 32), 4, mem.opts)
            base = current * NCHILD + 1
            unowned = child < base
            assert prove(
                sym_implies(unowned, final.retval == 0xFFFFFFFF),
                assumptions=[current < 4],
            ).proved

    def test_all_handlers_lower(self):
        from repro.certikos.impl import _handlers
        from repro.komodo.impl import _handlers as komodo_handlers

        assert set(lower_program(_handlers()).functions) == {
            "c_get_quota",
            "c_spawn",
            "c_yield",
        }
        lowered = lower_program(komodo_handlers()).functions
        assert "c_map_secure" in lowered and "c_remove" in lowered
