"""Property-based tests of the memory model against a flat reference.

Random sequences of concrete loads/stores through the block tree must
behave exactly like a plain byte array — regardless of the block
shapes chosen.  This pins down the claim behind §3.4's representation
flexibility: shape changes performance, never meaning.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.memory import MCell, MStruct, MUniform, Memory, MemoryOptions, Region
from repro.sym import bv_val, new_context

OPTS = MemoryOptions()
SIZE = 32  # bytes per tested region


def shape_flat():
    return MUniform([MCell(4) for _ in range(SIZE // 4)])


def shape_wide():
    return MUniform([MCell(8) for _ in range(SIZE // 8)])


def shape_struct():
    def make():
        return MStruct([("a", MCell(4)), ("b", MCell(8)), ("c", MCell(4))])

    return MUniform([make() for _ in range(SIZE // 16)])


SHAPES = {"flat4": shape_flat, "flat8": shape_wide, "structs": shape_struct}

ops = st.lists(
    st.tuples(
        st.sampled_from(["store", "load"]),
        st.sampled_from([1, 2, 4]),  # access width
        st.integers(min_value=0, max_value=SIZE - 1),
        st.integers(min_value=0, max_value=2**32 - 1),
    ),
    min_size=1,
    max_size=12,
)


@given(sequence=ops, shape_name=st.sampled_from(sorted(SHAPES)))
@settings(max_examples=60, deadline=None)
def test_block_tree_matches_flat_bytes(sequence, shape_name):
    with new_context():
        block = SHAPES[shape_name]()
        mem = Memory([Region("r", 0x1000, block)], OPTS)
        reference = bytearray(SIZE)
        # Give both sides the same concrete initial contents.
        for i in range(0, SIZE, 4):
            mem.store(bv_val(0x1000 + i, 32), bv_val(0, 32))
        for kind, width, offset, value in sequence:
            offset -= offset % width  # aligned accesses
            addr = bv_val(0x1000 + offset, 32)
            if kind == "store":
                mem.store(addr, bv_val(value, width * 8))
                reference[offset : offset + width] = (value & ((1 << (width * 8)) - 1)).to_bytes(
                    width, "little"
                )
            else:
                got = mem.load(addr, width).as_int()
                want = int.from_bytes(reference[offset : offset + width], "little")
                assert got == want, (shape_name, kind, width, offset)
        # Final sweep: every word agrees.
        for i in range(0, SIZE, 4):
            got = mem.load(bv_val(0x1000 + i, 32), 4).as_int()
            want = int.from_bytes(reference[i : i + 4], "little")
            assert got == want


@given(sequence=ops)
@settings(max_examples=30, deadline=None)
def test_concretization_toggle_agrees(sequence):
    """The §4 optimization and the naive fan-out agree on every
    concrete history (the toggle is performance-only)."""
    with new_context():
        mems = []
        for conc in (True, False):
            opts = MemoryOptions(concretize_offsets=conc)
            mem = Memory([Region("r", 0, shape_flat())], opts)
            for i in range(0, SIZE, 4):
                mem.store(bv_val(i, 32), bv_val(0, 32))
            mems.append(mem)
        for kind, width, offset, value in sequence:
            offset -= offset % width
            for mem in mems:
                if kind == "store":
                    mem.store(bv_val(offset, 32), bv_val(value, width * 8))
        for i in range(0, SIZE, 4):
            a = mems[0].load(bv_val(i, 32), 4).as_int()
            b = mems[1].load(bv_val(i, 32), 4).as_int()
            assert a == b
