"""Monitor tests: CertiKOS^s and Komodo^s (§6).

Binary-level refinement for representative operations (the full grid
is the Figure 11 benchmark), spec-level noninterference, and the
negative results the paper reports (PID covert channel; symbolic-
optimization ablations).
"""

import pytest

from repro.certikos import CertikosVerifier
from repro.certikos.ni import prove_small_step_properties, prove_spawn_targets_owned_child
from repro.certikos.spec import CertiState, spec_get_quota, spec_spawn, spec_yield, state_invariant
from repro.core import prove_invariant_step
from repro.core.symopt import SymOptConfig
from repro.komodo import KomodoVerifier
from repro.komodo.ni import (
    exit_declassifies,
    prove_host_cannot_read_enclave,
    prove_removed_enclave_unobservable,
)
from repro.sym import fresh_bv, new_context, solve

# The full monitor/JIT suites take minutes; CI runs them in a
# separate job after the fast tier passes.
pytestmark = pytest.mark.slow


class TestCertikosRefinement:
    @pytest.fixture(scope="class")
    def verifier(self):
        return CertikosVerifier(opt=1)

    def test_ri_satisfiable(self, verifier):
        """Guard against vacuous proofs: the representation invariant
        must admit states."""
        from repro.certikos.invariants import rep_invariant

        with new_context():
            cpu = verifier.make_cpu()
            assert solve(rep_invariant(cpu)) is not None

    def test_get_quota(self, verifier):
        assert verifier.prove_op("get_quota").proved

    def test_yield(self, verifier):
        assert verifier.prove_op("yield").proved

    def test_invalid_call(self, verifier):
        assert verifier.prove_op("invalid").proved

    def test_broken_spec_rejected(self, verifier):
        """Mutate the spec: the refinement must fail with a model."""
        ref = verifier.refinement("get_quota")
        orig = ref.spec_step

        def broken(s):
            out = orig(s)
            out.current = out.current + 1
            return out

        ref.spec_step = broken
        result = ref.prove()
        assert not result.proved
        assert result.counterexample is not None


class TestCertikosSpecLevel:
    def test_spec_invariant_preserved(self):
        for name, step in [
            ("get_quota", spec_get_quota),
            ("yield", spec_yield),
        ]:
            r = prove_invariant_step(f"certikos.{name}", state_invariant, step, CertiState)
            assert r.proved, name

    def test_spawn_preserves_invariant(self):
        def step(s):
            child = fresh_bv("tsp.child", 32)
            quota = fresh_bv("tsp.quota", 32)
            return spec_spawn(s, child, quota)

        assert prove_invariant_step("certikos.spawn", state_invariant, step, CertiState).proved

    def test_three_small_step_properties(self):
        results = prove_small_step_properties()
        for name, result in results.items():
            assert result.proved, name

    def test_pid_covert_channel(self):
        """§6.2: the explicit-PID spawn is flow-deterministic; the
        original implicit allocation leaks nr_children via the PID."""
        assert prove_spawn_targets_owned_child(implicit=False).proved
        leaky = prove_spawn_targets_owned_child(implicit=True)
        assert not leaky.proved
        assert leaky.counterexample is not None


class TestCertikosAblations:
    def test_no_split_pc_diverges(self):
        """§6.4: disabling symbolic optimizations prevents the
        refinement proof from terminating."""
        from repro.core.errors import EngineFuelExhausted, UnconstrainedPc

        v = CertikosVerifier(opt=1, symopts=SymOptConfig.none(), fuel=200)
        with pytest.raises((EngineFuelExhausted, UnconstrainedPc, AssertionError)):
            v.prove_op("get_quota")

    def test_no_offset_concretization_still_sound(self):
        """Disabling only the memory optimization keeps proofs sound
        (fan-out fallback), just slower."""
        opts = SymOptConfig(concretize_offsets=False)
        v = CertikosVerifier(opt=1, symopts=opts)
        assert v.prove_op("get_quota").proved


class TestBootCode:
    """§3.4: boot-code verification from the architectural reset state."""

    def test_certikos_boot_establishes_ri(self):
        from repro.certikos import prove_boot

        assert prove_boot(1).proved

    def test_komodo_boot_establishes_ri(self):
        from repro.komodo import prove_boot

        assert prove_boot(1).proved

    def test_boot_at_o0(self):
        from repro.certikos import prove_boot

        assert prove_boot(0).proved


class TestKomodo:
    @pytest.fixture(scope="class")
    def verifier(self):
        return KomodoVerifier(opt=1)

    @pytest.mark.parametrize("op", ["init_addrspace", "enter", "exit", "stop"])
    def test_refinement(self, verifier, op):
        assert verifier.prove_op(op).proved

    def test_init_l3ptable_exists(self, verifier):
        """§6.3: the call added for three-level RISC-V paging."""
        assert verifier.prove_op("init_l3ptable").proved

    def test_host_ni(self):
        assert prove_host_cannot_read_enclave().proved

    def test_removed_enclave_unobservable(self):
        assert prove_removed_enclave_unobservable().proved

    def test_exit_declassifies(self):
        assert exit_declassifies()


class TestNickelUnwinding:
    def test_nickel_ni_over_certikos_spec(self):
        """§6.2: the Nickel-style unwinding conditions prove for the
        get_quota/yield actions over the explicit-PID spec."""
        from repro.certikos.ni import prove_nickel

        results = prove_nickel()
        assert results, "no unwinding obligations generated"
        for name, result in results.items():
            assert result.proved, name
