"""Tests for ``repro.obs``: the unified tracing & metrics layer.

Covers the contracts the observability PR promises: span nesting and
post-exit args attachment, bit-identical counters across seeded runs,
worker->parent trace reassembly through the work-stealing scheduler,
Chrome trace schema validity, the near-zero disabled fast path, SAT
counter reset between solves, and profiler exclusive-time accounting.
"""

import os
import time

import pytest

from repro import obs
from repro.core.runner import Obligation, run_obligations
from repro.smt import manager, mk_bv, mk_bvadd, mk_bvmul, mk_eq, mk_ult, mk_var
from repro.smt.sat.solver import SatSolver
from repro.smt.solver import Solver
from repro.smt.sorts import bv_sort
from repro.sym.merge import get_merge_hook
from repro.sym.profiler import active_profiler, profile, region

BV8 = bv_sort(8)


def _solve_some(prefix: str) -> None:
    """A small deterministic workload: one non-trivial check."""
    x = mk_var(f"{prefix}_x", BV8)
    y = mk_var(f"{prefix}_y", BV8)
    goal = mk_eq(mk_bvmul(x, y), mk_bv(24, 8))
    Solver().check(goal, mk_ult(x, y))


def _obligations(prefix: str, n: int = 5) -> list[Obligation]:
    out = []
    for i in range(n):
        x = mk_var(f"{prefix}_x{i}", BV8)
        y = mk_var(f"{prefix}_y{i}", BV8)
        goal = mk_eq(mk_bvadd(x, y), mk_bvadd(y, x))
        out.append(Obligation.from_terms(f"{prefix}[{i}]", [goal]))
    return out


class TestSpans:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert obs.get_collector() is None
        # The disabled span is a shared singleton — no allocation.
        assert obs.span("a") is obs.span("b")
        with obs.span("noop") as args:
            assert args is None
        obs.count("nothing", 5)  # no-op, no error

    def test_span_nesting(self):
        with obs.tracing() as col:
            with obs.span("outer", cat="sym"):
                with obs.span("inner", cat="sym"):
                    time.sleep(0.001)
        assert [e.name for e in col.spans] == ["inner", "outer"]
        outer = col.spans[1]
        inner = col.spans[0]
        assert inner.ts >= outer.ts
        assert inner.ts + inner.dur <= outer.ts + outer.dur + 1e-6

    def test_args_attached_after_exit(self):
        """The mutable-args pattern: instrumentation fills the span's
        args dict after the ``with`` block closes."""
        with obs.tracing() as col:
            with obs.span("solve", cat="sat") as args:
                pass
            args["status"] = "unsat"
        assert col.spans[0].args["status"] == "unsat"

    def test_nested_tracing_absorbs_into_outer(self):
        with obs.tracing() as outer:
            obs.count("k", 1)
            with obs.tracing() as inner:
                obs.count("k", 2)
                with obs.span("inner-only"):
                    pass
            # Inner session folded into the outer on exit.
        assert outer.counters["k"] == 3
        assert [e.name for e in outer.spans] == ["inner-only"]
        assert inner.counters["k"] == 2

    def test_span_cap_drops_and_counts(self):
        col = obs.Collector(max_spans=3)
        with obs.tracing(collector=col):
            for i in range(5):
                with obs.span(f"s{i}"):
                    pass
        assert len(col.spans) == 3
        assert col.dropped_spans == 2

    def test_hooks_restored_after_tracing(self):
        term_hook = manager.on_new_term
        merge_hook = get_merge_hook()
        with obs.tracing():
            assert manager.on_new_term is not term_hook
        assert manager.on_new_term is term_hook
        assert get_merge_hook() is merge_hook


class TestCounters:
    def test_stack_counters_recorded(self):
        with obs.tracing() as col:
            _solve_some("ctrs")
        counters = col.counters
        assert counters["solver.queries"] == 1
        assert counters["bitblast.queries"] == 1
        assert counters["bitblast.clauses"] > 0
        assert counters["sym.terms"] > 0
        assert counters["sat.decisions"] > 0
        # Counters are integers only — wall-clock never leaks in.
        assert all(isinstance(v, int) for v in counters.values())

    def test_counters_deterministic_across_runs(self):
        """Two structurally identical workloads produce bit-identical
        counter maps.  Distinct variable prefixes per run keep the
        hash-consed DAG from making the second run trivially free."""
        with obs.tracing() as first:
            _solve_some("det_a")
        with obs.tracing() as second:
            _solve_some("det_b")
        assert first.counters == second.counters

    def test_cache_counters(self, tmp_path):
        from repro.smt.solver import SolverCache

        x = mk_var("cachectr_x", BV8)
        goal = mk_eq(mk_bvadd(x, x), mk_bv(4, 8))
        with obs.tracing() as col:
            Solver(cache=SolverCache(str(tmp_path))).check(goal)
            Solver(cache=SolverCache(str(tmp_path))).check(goal)
        assert col.counters["solver.cache.misses"] == 1
        assert col.counters["solver.cache.hits"] == 1
        cache_spans = [e for e in col.spans if e.cat == "solver-cache"]
        assert {e.name for e in cache_spans} == {"canonicalize", "cache.lookup", "cert.build"}


class TestWorkerReassembly:
    def test_scheduler_trace_reassembly(self):
        from repro.core.scheduler import shutdown_scheduler

        obligations = _obligations("reasm", 6)
        try:
            with obs.tracing() as col, profile() as prof:
                results, stats = run_obligations(obligations, jobs=2)
        finally:
            shutdown_scheduler()
        assert [r.name for r in results] == [ob.name for ob in obligations]
        assert all(r.proved for r in results)

        sched = [e for e in col.spans if e.cat == "scheduler"]
        assert len(sched) == len(obligations)
        # One span per obligation, labelled with its worker's track.
        assert {e.name for e in sched} == {ob.name for ob in obligations}
        assert all(e.tid.startswith("worker-") for e in sched)
        for event in sched:
            assert event.args["status"] == "proved"
            assert event.args["attempts"] == 1
        # Worker-side solver activity landed on worker tracks too.
        sat_spans = [e for e in col.spans if e.cat == "sat"]
        assert sat_spans and all(e.tid.startswith("worker-") for e in sat_spans)
        assert col.counters["solver.queries"] == len(obligations)
        # These obligations enter no sym regions, so the reassembled
        # profiler is empty — but the merge path must leave it usable.
        assert prof.snapshot() == {}

    def test_sequential_trace_has_scheduler_layer(self):
        with obs.tracing() as col:
            results, _ = run_obligations(_obligations("seqtrace", 3), jobs=1)
        assert all(r.proved for r in results)
        sched = [e for e in col.spans if e.cat == "scheduler"]
        assert [e.name for e in sched] == [r.name for r in results]
        assert all(e.args["status"] == "proved" for e in sched)

    def test_fallback_pool_trace_reassembly(self):
        os.environ["REPRO_NO_SCHEDULER"] = "1"
        try:
            with obs.tracing() as col:
                results, _ = run_obligations(_obligations("fbtrace", 4), jobs=2)
        finally:
            del os.environ["REPRO_NO_SCHEDULER"]
        assert all(r.proved for r in results)
        assert len([e for e in col.spans if e.cat == "scheduler"]) == 4
        assert col.counters["solver.queries"] == 4
        # The envelope is consumed during reassembly, not left in stats.
        assert all("obs" not in r.stats for r in results)


class TestExport:
    def test_chrome_trace_schema(self):
        with obs.tracing() as col:
            with obs.span("a", cat="sym"):
                with obs.span("b", cat="sat"):
                    pass
            obs.count("sat.conflicts", 7)
        doc = obs.chrome_trace(col)
        assert obs.validate_chrome_trace(doc) == []
        events = doc["traceEvents"]
        assert {e["ph"] for e in events} == {"X"}
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in events)
        assert doc["otherData"]["counters"]["sat.conflicts"] == 7

    def test_validate_rejects_malformed(self):
        assert obs.validate_chrome_trace([]) != []
        assert obs.validate_chrome_trace({"traceEvents": [{"name": "x"}]}) != []

    def test_jsonl_lines(self):
        import json

        with obs.tracing() as col:
            with obs.span("only", cat="bitblast"):
                pass
        lines = list(obs.jsonl_lines(col))
        rows = [json.loads(line) for line in lines]
        assert any(r.get("name") == "only" for r in rows)

    def test_report_renders(self):
        from repro.obs.report import render_report, summarize

        with obs.tracing() as col, profile() as prof:
            run_obligations(_obligations("report", 2), jobs=1)
        text = render_report({"obs": summarize(col, profiler=prof)})
        assert "obligations by wall time" in text
        assert "report[0]" in text


class TestDisabledOverhead:
    def test_disabled_fast_path_is_cheap(self):
        """The disabled guard is a global load + None test.  Generous
        absolute bound so slow CI machines do not flake: 200k span+count
        pairs well under a second (that is > 2.5us per pair)."""
        assert not obs.enabled()
        span, count = obs.span, obs.count
        start = time.perf_counter()
        for _ in range(200_000):
            with span("hot", cat="sat"):
                pass
            count("hot.counter")
        elapsed = time.perf_counter() - start
        assert elapsed < 1.0, f"disabled obs path took {elapsed:.3f}s for 200k pairs"

    @pytest.mark.slow
    def test_toyrisc_verify_untraced(self):
        """End-to-end smoke with tracing disabled: the instrumented
        stack proves the §3.2 walkthrough with no collector active."""
        from repro.toyrisc import prove_sign_refinement

        assert not obs.enabled()
        assert prove_sign_refinement().proved
        assert not obs.enabled()


class TestSatCounterReset:
    def test_stats_reset_between_solves(self):
        solver = SatSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a, b])
        solver.add_clause([-a, b])
        solver.add_clause([a, -b])
        assert solver.solve() == "sat"
        first = solver.stats()
        assert solver.solve() == "sat"
        second = solver.stats()
        # Per-solve counters restart from zero each query instead of
        # accumulating across solves.
        for key in ("conflicts", "decisions", "propagations", "restarts",
                    "learned_clauses", "conflict_literals", "max_decision_level"):
            assert second[key] <= first[key], key
        # The first solve decided something; a cumulative counter would
        # carry that into the second snapshot.
        assert first["decisions"] > 0
        assert second["decisions"] < 2 * first["decisions"]

    def test_stats_keys(self):
        solver = SatSolver()
        a = solver.new_var()
        solver.add_clause([a])
        solver.solve()
        stats = solver.stats()
        for key in ("vars", "clauses", "conflicts", "decisions", "propagations",
                    "restarts", "learned_clauses", "learned_kept",
                    "conflict_literals", "max_decision_level", "avg_learned_len"):
            assert key in stats


class TestProfilerIntegration:
    def test_exclusive_time(self):
        with profile() as prof:
            with region("parent"):
                time.sleep(0.02)
                with region("child"):
                    time.sleep(0.02)
        parent = prof.regions["parent"]
        child = prof.regions["child"]
        assert parent.time_s >= parent.excl_s
        assert parent.time_s >= 0.035
        assert parent.excl_s < parent.time_s - 0.01  # child time excluded
        assert abs(child.excl_s - child.time_s) < 1e-6  # leaf: excl == incl

    def test_regions_emit_sym_spans(self):
        with obs.tracing() as col, profile():
            with region("spanned"):
                mk_var("profspan_x", BV8)
        spans = [e for e in col.spans if e.cat == "sym" and e.name == "spanned"]
        assert len(spans) == 1
        assert spans[0].args["terms"] >= 1

    def test_region_obs_only_without_profiler(self):
        assert active_profiler() is None
        with obs.tracing() as col:
            with region("unprofiled") as stats:
                assert stats is None
        assert [e.name for e in col.spans if e.cat == "sym"] == ["unprofiled"]

    def test_profile_chains_obs_hooks(self):
        """A profiler inside a tracing session feeds both: its own
        regions and the session's sym.* counters."""
        with obs.tracing() as col:
            with profile() as prof:
                with region("both"):
                    mk_var("chain_x", BV8)
        assert prof.regions["both"].terms >= 1
        assert col.counters["sym.terms"] >= 1

    def test_merge_from_roundtrip(self):
        with profile() as prof:
            with region("r"):
                mk_var("mergefrom_x", BV8)
        snap = prof.snapshot()
        with profile() as other:
            other.merge_from(snap)
            other.merge_from(snap)
        r = other.regions["r"]
        assert r.calls == 2 * prof.regions["r"].calls
        assert r.terms == 2 * prof.regions["r"].terms
        assert r.max_union == prof.regions["r"].max_union
