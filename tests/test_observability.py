"""Fleet-wide observability: histograms, Prometheus exposition, the
correlation-ID event log, cross-process trace propagation, and the
``obs.top`` dashboard.

The unit half pins the mergeable-histogram and text-format contracts
(same bucket bounds everywhere, element-wise merge, lossless render/
parse round trip).  The end-to-end half runs a *traced* daemon and
checks what the CI serve-load gate leans on: concurrent ``/metrics``
scrapes during a live grid job parse cleanly with monotonic counters,
and a single client trace_id shows up in daemon spans, a worker-side
solve span, and a store request log line.
"""

import json
import random
import threading
import urllib.request

import pytest

from repro import obs
from repro.core.remote import RemoteStoreClient, StoreServer
from repro.core.runner import Obligation
from repro.obs import HIST_BUCKETS, Histogram
from repro.obs.collector import Collector
from repro.obs.events import (
    current_trace,
    format_trace_header,
    parse_trace_header,
    trace_context,
)
from repro.obs.export import merge_chrome_traces
from repro.obs.prom import CONTENT_TYPE, metric_name, parse_prometheus, render_prometheus
from repro.obs import top as obs_top
from repro.serve import ServeClient, VerificationServer
from repro.smt import bv_sort, mk_bv, mk_bvadd, mk_bvxor, mk_eq, mk_var

BV8 = bv_sort(8)


def _obligations(prefix: str, n: int = 6, salt: int = 0) -> list[Obligation]:
    """Small valid batch that reaches the SAT core.  ``salt`` makes the
    goals structurally unique per test (the cache canonicalizes variable
    names away, so distinct constants are what forces fresh solves)."""
    out = []
    for i in range(n):
        x = mk_var(f"{prefix}_x{i}", BV8)
        y = mk_var(f"{prefix}_y{i}", BV8)
        c = mk_bv((salt + i) % 256, 8)
        goal = mk_eq(mk_bvadd(mk_bvxor(mk_bvxor(x, y), y), c), mk_bvadd(x, c))
        out.append(Obligation.from_terms(f"{prefix}[{i}]", [goal]))
    return out


# ---------------------------------------------------------------------------
# histograms


class TestHistogram:
    def test_observe_and_summary(self):
        hist = Histogram()
        values = [0.0002, 0.001, 0.004, 0.004, 0.03, 0.25, 2.0]
        for v in values:
            hist.observe(v)
        s = hist.summary()
        assert s["count"] == len(values)
        assert s["sum"] == pytest.approx(sum(values))
        assert s["min"] == min(values) and s["max"] == max(values)
        assert s["min"] <= s["p50"] <= s["p90"] <= s["p99"] <= s["max"]

    def test_empty_percentiles(self):
        hist = Histogram()
        assert hist.percentile(0.5) == 0.0
        assert hist.summary()["count"] == 0

    def test_merge_determinism_across_workers(self):
        """Sharding observations across N 'workers' and merging in any
        order reproduces the single-process histogram bit-for-bit —
        the histogram analogue of the counter determinism contract."""
        rng = random.Random(7)
        values = [rng.uniform(1e-5, 5.0) for _ in range(1000)]
        whole = Histogram()
        shards = [Histogram() for _ in range(4)]
        for i, v in enumerate(values):
            whole.observe(v)
            shards[i % 4].observe(v)

        merged_fwd = Histogram()
        for shard in shards:
            merged_fwd.merge(shard)
        merged_rev = Histogram()
        for shard in reversed(shards):
            # Dict form, as worker envelopes ship it.
            merged_rev.merge(shard.to_json())

        assert merged_fwd.to_json() == merged_rev.to_json()
        assert merged_fwd.buckets == whole.buckets
        assert merged_fwd.count == whole.count
        assert merged_fwd.min == whole.min and merged_fwd.max == whole.max
        assert merged_fwd.sum == pytest.approx(whole.sum)

    def test_merge_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError):
            Histogram().merge(Histogram(bounds=(1.0, 2.0)))

    def test_json_roundtrip(self):
        hist = Histogram()
        for v in (0.003, 0.05, 1.5):
            hist.observe(v)
        clone = Histogram.from_json(json.loads(json.dumps(hist.to_json())))
        assert clone.to_json() == hist.to_json()
        assert clone.summary() == hist.summary()

    def test_collector_observe_and_absorb(self):
        parent, child = Collector(), Collector()
        parent.observe("lat", 0.01)
        child.observe("lat", 0.02)
        child.observe("other", 0.5)
        parent.absorb(child.snapshot())
        assert parent.histograms["lat"].count == 2
        assert parent.histograms["other"].count == 1


# ---------------------------------------------------------------------------
# Prometheus text format


class TestPrometheus:
    def test_metric_name_sanitization(self):
        assert metric_name("obligation.wall_seconds") == "repro_obligation_wall_seconds"
        assert metric_name("store.remote.fetch_s") == "repro_store_remote_fetch_s"
        assert metric_name("repro_already_prefixed") == "repro_already_prefixed"

    def test_content_type_is_0_0_4(self):
        assert "version=0.0.4" in CONTENT_TYPE

    def test_render_parse_roundtrip(self):
        hist = Histogram()
        for v in (0.0003, 0.002, 0.002, 0.9):
            hist.observe(v)
        text = render_prometheus(
            counters={"solver.queries": 3, "sat.conflicts": 120},
            gauges={"scheduler.queued": 2, "serve.uptime_seconds": 1.5, "skip.me": None},
            histograms={"obligation.wall_seconds": hist},
        )
        assert "# TYPE repro_obligation_wall_seconds histogram" in text
        assert 'repro_obligation_wall_seconds_bucket{le="+Inf"} 4' in text

        back = parse_prometheus(text)
        assert back["counters"]["repro_solver_queries"] == 3
        assert back["gauges"]["repro_scheduler_queued"] == 2
        assert "repro_skip_me" not in back["gauges"]
        doc = back["histograms"]["repro_obligation_wall_seconds"]
        assert doc["bounds"] == pytest.approx(list(HIST_BUCKETS))
        assert doc["buckets"] == hist.buckets
        assert doc["count"] == hist.count
        assert doc["sum"] == pytest.approx(hist.sum)

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is { not a sample\n")
        # A histogram without its +Inf bucket is invalid exposition.
        bad = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="0.1"} 1\n'
            "repro_h_sum 0.05\nrepro_h_count 1\n"
        )
        with pytest.raises(ValueError):
            parse_prometheus(bad)


# ---------------------------------------------------------------------------
# event log + trace context


class TestEventLog:
    def test_ring_rolloff_keeps_seq_monotonic(self):
        col = Collector(max_events=8)
        for i in range(20):
            col.event("info", f"e{i}")
        records = col.events_since(0)
        assert [r["seq"] for r in records] == list(range(13, 21))
        assert [r["seq"] for r in col.events_since(18)] == [19, 20]

    def test_level_floor_filter(self):
        col = Collector()
        for level in ("debug", "info", "warn", "error", "bogus"):
            col.event(level, level)
        warn_up = col.events_since(0, level="warn")
        assert [r["msg"] for r in warn_up] == ["warn", "error"]
        # Unknown record levels rank as info; unknown filter levels are
        # ignored rather than raising.
        info_up = col.events_since(0, level="info")
        assert "bogus" in [r["msg"] for r in info_up]
        assert len(col.events_since(0, level="nope")) == 5

    def test_absorb_resequences_child_events(self):
        parent, child = Collector(), Collector()
        parent.event("info", "p1")
        child.event("info", "c1")
        child.event("warn", "c2")
        parent.absorb(child.snapshot())
        seqs = [r["seq"] for r in parent.events_since(0)]
        assert seqs == sorted(seqs) == list(range(1, 4))
        assert [r["msg"] for r in parent.events_since(0)] == ["p1", "c1", "c2"]


class TestTraceContext:
    def test_nesting_and_inheritance(self):
        assert current_trace() == (None, None)
        with trace_context("t1"):
            assert current_trace() == ("t1", None)
            with trace_context(None, "t1.3"):
                # ob scopes inherit the enclosing trace_id.
                assert current_trace() == ("t1", "t1.3")
            assert current_trace() == ("t1", None)
        assert current_trace() == (None, None)

    def test_header_roundtrip(self):
        assert parse_trace_header(format_trace_header("abc", None)) == ("abc", None)
        assert parse_trace_header(format_trace_header("abc", "abc.4")) == ("abc", "abc.4")
        assert format_trace_header(None, "x") is None
        assert parse_trace_header(None) == (None, None)
        assert parse_trace_header("  ") == (None, None)

    def test_spans_and_events_stamped_with_ambient_ids(self):
        with obs.tracing() as col:
            with trace_context("tx", "tx.0"):
                with obs.span("solve", cat="sat"):
                    pass
                obs.event("info", "did-a-thing", detail=1)
            with obs.span("unstamped"):
                pass
        assert col.spans[0].args["trace_id"] == "tx"
        assert col.spans[0].args["ob_id"] == "tx.0"
        assert "trace_id" not in (col.spans[1].args or {})
        record = col.events_since(0)[0]
        assert record["trace_id"] == "tx" and record["ob_id"] == "tx.0"
        assert record["detail"] == 1


# ---------------------------------------------------------------------------
# store server: trace header in the request log, Prometheus /store/metrics


class TestStoreServerObservability:
    def test_remote_client_propagates_trace_header(self, tmp_path):
        srv = StoreServer(str(tmp_path / "store"), collect=True).start()
        try:
            client = RemoteStoreClient(srv.url)
            with trace_context("tr-remote", "tr-remote.0"):
                assert client.index()["entries"] == 0
            rows = [
                r for r in srv.collector.events_since(0)
                if r["msg"] == "store.request" and r["trace_id"] == "tr-remote"
            ]
            assert rows and rows[0]["ob_id"] == "tr-remote.0"
        finally:
            srv.close()

    def test_store_metrics_content_negotiation(self, tmp_path):
        srv = StoreServer(str(tmp_path / "store")).start()
        try:
            request = urllib.request.Request(
                f"{srv.url}/store/metrics", headers={"Accept": "text/plain"}
            )
            with urllib.request.urlopen(request, timeout=10) as reply:
                assert reply.headers["Content-Type"] == CONTENT_TYPE
                parsed = parse_prometheus(reply.read().decode())
            assert parsed["counters"]["repro_store_requests"] >= 1
            assert "repro_store_uptime_seconds" in parsed["gauges"]

            with urllib.request.urlopen(f"{srv.url}/store/metrics", timeout=10) as reply:
                doc = json.loads(reply.read())
            assert doc["counters"]["store.requests"] >= 1
            assert doc["gauges"]["store.spool_pending"] == 0
        finally:
            srv.close()


# ---------------------------------------------------------------------------
# traced daemon end-to-end


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    root = tmp_path_factory.mktemp("obs_serve")
    srv = VerificationServer(store_dir=str(root / "store"), trace=True).start()
    yield srv
    srv.close()


@pytest.fixture()
def client(server):
    return ServeClient(server.url, timeout_s=120.0)


class TestServeObservability:
    def test_healthz_reports_version_and_uptime(self, client):
        from repro import __version__

        health = client.healthz()
        assert health["version"] == __version__
        assert health["started_at"] > 0
        assert health["uptime_s"] >= 0
        assert client.version() == __version__

    def test_metrics_prometheus_after_job(self, client):
        job_id = client.submit_obligations(_obligations("prom", salt=0), jobs=2)["id"]
        assert client.wait(job_id, timeout_s=120)["state"] == "done"

        text = client.metrics_text()
        assert "repro_obligation_wall_seconds_bucket" in text
        parsed = parse_prometheus(text)
        hist = parsed["histograms"]["repro_obligation_wall_seconds"]
        assert hist["count"] >= 6
        assert sum(hist["buckets"]) == hist["count"]
        assert parsed["gauges"]["repro_scheduler_pool_workers"] >= 1
        assert parsed["gauges"]["repro_serve_uptime_seconds"] > 0
        assert parsed["gauges"]["repro_store_remote_breaker_open"] == 0

        doc = client.metrics()
        summaries = doc["obs"]["histograms"]
        wall = summaries["obligation.wall_seconds"]
        assert wall["count"] == hist["count"]
        assert wall["p50"] <= wall["p90"] <= wall["p99"]
        assert "obligation.queue_wait_seconds" in summaries
        assert doc["store"]["remote_breaker_open"] is False

    def test_trace_id_spans_daemon_worker_and_store(self, server):
        """One client trace_id is visible in daemon scheduler spans, in
        a worker-side solve span, in the obligation event log, and in a
        store request log line — the acceptance walk of the PR."""
        traced = ServeClient(server.url, timeout_s=120.0, trace_id="e2e-trace-1")
        job = traced.submit_obligations(_obligations("e2e", 4, salt=16), jobs=2)
        assert job["trace_id"] == "e2e-trace-1"
        assert traced.wait(job["id"], timeout_s=120)["state"] == "done"

        spans = server._collector.snapshot()["spans"]
        mine = [row for row in spans if (row[5] or {}).get("trace_id") == "e2e-trace-1"]
        cats = {row[1] for row in mine}
        assert "scheduler" in cats, "no scheduler span carried the trace id"
        worker_solves = [
            row for row in mine if row[1] == "sat" and row[2].startswith("worker-")
        ]
        assert worker_solves, "no worker-side solve span carried the trace id"
        ob_ids = {(row[5] or {}).get("ob_id") for row in worker_solves}
        assert any(ob and ob.startswith("e2e-trace-1.") for ob in ob_ids)

        page = traced.events()
        done = [
            r for r in page["events"]
            if r["msg"] == "obligation.done" and r["trace_id"] == "e2e-trace-1"
        ]
        assert len(done) == 4
        assert all(r["status"] == "proved" for r in done)

        # Any store-route request from this client logs under its trace.
        traced._request("GET", "/store/index")
        store_rows = [
            r for r in traced.events()["events"]
            if r["msg"] == "store.request" and r["trace_id"] == "e2e-trace-1"
        ]
        assert store_rows and store_rows[-1]["path"] == "/store/index"

    def test_concurrent_scrapes_during_grid_job(self, server, client):
        """Scraping /metrics from several threads while a grid job runs
        never yields a torn read: every exposition parses, histogram
        bucket sums equal their counts, and counters are monotonic
        within each scraper's sample sequence."""
        job_id = client.submit_grid("fig11-quick", opt=1, jobs=2)["id"]
        stop = threading.Event()
        failures: list[str] = []
        samples: list[list[dict]] = [[] for _ in range(4)]

        def scrape(slot: int):
            scraper = ServeClient(server.url, timeout_s=30.0)
            while not stop.is_set() and len(samples[slot]) < 40:
                try:
                    parsed = parse_prometheus(scraper.metrics_text())
                except Exception as exc:  # noqa: BLE001 - surfaced via failures
                    failures.append(f"scraper {slot}: {exc}")
                    return
                samples[slot].append(parsed)

        threads = [threading.Thread(target=scrape, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        try:
            assert client.wait(job_id, timeout_s=300)["state"] == "done"
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=60)

        assert not failures
        assert all(samples), "a scraper never completed a sample"
        for seq in samples:
            for parsed in seq:
                for name, hist in parsed["histograms"].items():
                    assert sum(hist["buckets"]) == hist["count"], name
            for name in ("repro_serve_http_requests", "repro_solver_queries"):
                values = [p["counters"].get(name, 0) for p in seq]
                assert values == sorted(values), f"{name} went backwards"
            counts = [
                p["histograms"]
                .get("repro_obligation_wall_seconds", {"count": 0})["count"]
                for p in seq
            ]
            assert counts == sorted(counts)

    def test_events_endpoint_pages_with_since(self, client):
        job_id = client.submit_obligations(_obligations("evpage", 3, salt=32))["id"]
        assert client.wait(job_id, timeout_s=120)["state"] == "done"

        page = client.events()
        assert page["events"], "daemon recorded no events"
        seqs = [r["seq"] for r in page["events"]]
        assert seqs == sorted(seqs)
        assert page["next"] == seqs[-1]
        tail = client.events(since=page["next"])
        assert all(r["seq"] > page["next"] for r in tail["events"])
        for record in client.events(level="info")["events"]:
            assert record["level"] in ("info", "warn", "error")

    def test_obs_top_once_json(self, server, client, capsys):
        job_id = client.submit_obligations(_obligations("toprun", 4, salt=48), jobs=2)["id"]
        assert client.wait(job_id, timeout_s=120)["state"] == "done"

        assert obs_top.main(["--once", "--json", server.url]) == 0
        doc = json.loads(capsys.readouterr().out)
        entry = doc["endpoints"][0]
        assert entry["ok"] is True
        assert entry["version"]
        assert entry["ob_per_s"] > 0
        assert entry["obligations"] >= 4
        assert entry["p50_ms"] <= entry["p99_ms"]
        assert entry["pool_workers"] >= 1
        assert entry["remote"]["breaker_open"] is False

        rendered = obs_top.render(obs_top.build_doc([obs_top.sample_endpoint(server.url)]))
        assert "ob/s" in rendered and "cache hit" in rendered

    def test_obs_top_reports_down_endpoint(self, capsys):
        assert obs_top.main(["--once", "--json", "http://127.0.0.1:9"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["endpoints"][0]["ok"] is False


# ---------------------------------------------------------------------------
# fleet trace merge + report modes


class TestReportAndMerge:
    def _collector_doc(self, name: str) -> dict:
        with obs.tracing() as col:
            with obs.span(name, cat="scheduler"):
                pass
            obs.count("sat.conflicts", 3)
        return obs.chrome_trace(col)

    def test_merge_chrome_traces(self):
        one = self._collector_doc("fleet-a")
        two = self._collector_doc("fleet-b")
        merged = merge_chrome_traces([one, two])
        assert obs.validate_chrome_trace(merged) == []
        assert {e["pid"] for e in merged["traceEvents"]} == {1, 2}
        assert merged["otherData"]["counters"]["sat.conflicts"] == 6
        assert merged["otherData"]["merged_from"] == 2

    def test_report_merge_cli(self, tmp_path, capsys):
        from repro.obs.report import main as report_main

        paths = []
        for i, doc in enumerate([self._collector_doc("m0"), self._collector_doc("m1")]):
            path = tmp_path / f"trace{i}.json"
            path.write_text(json.dumps(doc))
            paths.append(str(path))
        out = str(tmp_path / "merged.json")
        assert report_main([*paths, "--merge", "--out", out]) == 0
        merged = json.loads((tmp_path / "merged.json").read_text())
        assert obs.validate_chrome_trace(merged) == []
        # Two artifacts without --merge is a usage error.
        assert report_main(paths) == 2
        capsys.readouterr()

    def test_report_json_mode(self, tmp_path, capsys):
        from repro.obs.report import main as report_main, summarize

        with obs.tracing() as col:
            with obs.span("ob-a", cat="scheduler"):
                pass
            obs.count("solver.queries", 1)
            col.observe("obligation.wall_seconds", 0.02)
        artifact = tmp_path / "bench.json"
        artifact.write_text(json.dumps({"obs": summarize(col)}))

        assert report_main([str(artifact), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["counters"]["solver.queries"] == 1
        assert doc["histograms"]["obligation.wall_seconds"]["count"] == 1
        assert [row["name"] for row in doc["obligations"]] == ["ob-a"]
