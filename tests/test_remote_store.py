"""The distributed verdict store (``repro.core.remote``).

Covers the properties the ``store-remote`` CI job leans on:

  * the HTTP object-store protocol round-trips entries and
    certificates byte-for-byte with idempotent first-writer-wins PUTs;
  * a cold client reads through to a warm remote, verifies the fetched
    certificate with the independent checker before adoption, and
    counts hits/misses/rejections in ``repro.obs``;
  * writes spool locally and flush back to the server;
  * under injected faults (500s, timeouts, truncated bodies, corrupted
    certificates) the client degrades to local-only, never adopts a
    bad certificate, and recovers when the server heals;
  * two client processes racing write-back of one digest leave exactly
    one valid object server-side.
"""

import json
import multiprocessing
import os
import random
import time
import zlib

import pytest

from repro import obs
from repro.core.remote import (
    RemoteStoreClient,
    RemoteVerdictStore,
    StoreAPI,
    StoreServer,
    _reset_breakers,
)
from repro.core.runner import Obligation, run_obligations
from repro.core.store import VerdictStore, main as store_main
from repro.smt import CheckResult, Model, Solver, bv_sort, mk_bv, mk_eq, mk_ult, mk_var
from repro.smt.checkproof import check_certificate


@pytest.fixture(autouse=True)
def _fresh_breakers():
    """Each test starts with every circuit breaker closed, however the
    previous test left the (process-global) breaker table."""
    _reset_breakers()
    yield
    _reset_breakers()


# Store digests are alpha-blind, so distinct variable names alone do
# NOT distinguish queries; the constants must differ too.  Derive them
# from the prefix so seeder and checker always build the same query.


def _unsat_query(prefix: str):
    h = zlib.crc32(prefix.encode())
    a = 1 + (h % 120)
    b = a + 4 + ((h >> 8) % 100)
    x = mk_var(f"{prefix}_x", bv_sort(8))
    return [mk_ult(x, mk_bv(a, 8)), mk_ult(mk_bv(b, 8), x)]


def _sat_value(prefix: str) -> int:
    return 10 + (zlib.crc32(prefix.encode()) % 200)


def _sat_query(prefix: str):
    v = _sat_value(prefix)
    x = mk_var(f"{prefix}_x", bv_sort(8))
    return [mk_eq(x, mk_bv(v, 8)), mk_ult(mk_bv(v - 1, 8), x)]


def _seed(store_dir: str, prefixes) -> list[str]:
    """Solve real queries into ``store_dir`` so it holds entries *and*
    checkable certificates; returns their digests."""
    solver = Solver(cache=VerdictStore(store_dir))
    digests = []
    for i, prefix in enumerate(prefixes):
        query = _sat_query(prefix) if i % 2 else _unsat_query(prefix)
        solver.check(*query)
        digests.append(solver.last_stats["digest"])
    return digests


DIG = "ab" + "12" * 20  # syntactically valid, never a real query digest


class TestProtocol:
    """StoreAPI request/response semantics, no sockets involved."""

    @pytest.fixture
    def api(self, tmp_path):
        return StoreAPI(VerdictStore(str(tmp_path / "srv")))

    def test_put_then_get_round_trips_bytes(self, api):
        raw = json.dumps({"status": "unsat", "pad": "x"}).encode()
        status, payload, _, headers = api.handle("PUT", f"/store/{DIG}", raw)
        assert status == 201
        assert json.loads(payload) == {"digest": DIG, "stored": True}
        assert headers["ETag"] == f'"{DIG}"'
        status, payload, ctype, headers = api.handle("GET", f"/store/{DIG}", None)
        assert (status, payload, ctype) == (200, raw, "application/json")
        assert headers["ETag"] == f'"{DIG}"'

    def test_put_existing_digest_is_idempotent(self, api):
        raw = json.dumps({"status": "unsat"}).encode()
        assert api.handle("PUT", f"/store/{DIG}", raw)[0] == 201
        # Second writer: success, but nothing stored — the digest is the
        # content address, first writer wins.
        status, payload, _, _ = api.handle("PUT", f"/store/{DIG}", raw)
        assert status == 200
        assert json.loads(payload) == {"digest": DIG, "stored": False}

    def test_get_miss_is_404(self, api):
        assert api.handle("GET", f"/store/{DIG}", None)[0] == 404
        assert api.handle("HEAD", f"/store/{DIG}", None)[0] == 404
        assert api.handle("GET", f"/store/{DIG}/cert", None)[0] == 404

    def test_put_rejects_bad_payloads(self, api):
        assert api.handle("PUT", f"/store/{DIG}", b"not json")[0] == 400
        assert api.handle("PUT", f"/store/{DIG}", b'["list"]')[0] == 400
        bad_status = json.dumps({"status": "unknown"}).encode()
        assert api.handle("PUT", f"/store/{DIG}", bad_status)[0] == 400
        assert api.handle("PUT", f"/store/{DIG}", None)[0] == 400
        # Nothing landed on disk.
        assert api.store.digests() == []

    def test_bad_paths_are_404(self, api):
        assert api.handle("GET", "/store/nothex!", None)[0] == 404
        assert api.handle("GET", "/store/ab", None)[0] == 404  # too short
        assert api.handle("GET", "/store/../etc/passwd", None)[0] == 404

    def test_cert_round_trip_survives_gzip_threshold(self, api):
        entry = json.dumps({"status": "unsat"}).encode()
        api.handle("PUT", f"/store/{DIG}", entry)
        # Large enough that the store gzips it on disk; GET must still
        # return the original JSON bytes (the wire format is plain).
        cert = json.dumps({"kind": "drat", "digest": DIG, "pad": "y" * 40000}).encode()
        assert api.handle("PUT", f"/store/{DIG}/cert", cert)[0] == 201
        cert_file = api.store._find_cert_file(DIG)
        assert cert_file.endswith(".gz")
        status, payload, _, _ = api.handle("GET", f"/store/{DIG}/cert", None)
        assert (status, payload) == (200, cert)

    def test_manifest_reports_presence(self, api):
        entry = json.dumps({"status": "sat", "model": {}}).encode()
        api.handle("PUT", f"/store/{DIG}", entry)
        other = "cd" + "34" * 20
        body = json.dumps({"digests": [DIG, other, "junk!"]}).encode()
        status, payload, _, _ = api.handle("POST", "/store/manifest", body)
        doc = json.loads(payload)
        assert status == 200
        assert doc["entries"] == {DIG: True, other: False, "junk!": False}
        assert doc["certs"][DIG] is False
        assert api.handle("POST", "/store/manifest", b"broken")[0] == 400

    def test_healthz_and_index(self, api):
        api.handle("PUT", f"/store/{DIG}", json.dumps({"status": "unsat"}).encode())
        status, payload, _, _ = api.handle("GET", "/store/healthz", None)
        doc = json.loads(payload)
        assert status == 200 and doc["ok"] and doc["entries"] == 1
        status, payload, _, _ = api.handle("GET", "/store/index", None)
        doc = json.loads(payload)
        assert status == 200 and doc["entries"] == 1 and doc["spool_pending"] == 0

    def test_unsupported_method_is_405(self, api):
        assert api.handle("DELETE", f"/store/{DIG}", None)[0] == 405


class TestReadThrough:
    def test_cold_client_hits_warm_remote_and_adopts(self, tmp_path):
        server_dir = str(tmp_path / "srv")
        [digest] = _seed(server_dir, ["rt_warm"])
        server = StoreServer(server_dir).start()
        try:
            local = RemoteVerdictStore(str(tmp_path / "cli"), server.url)
            solver = Solver(cache=local)
            with obs.tracing() as col:
                result = solver.check(*_unsat_query("rt_warm"))
            assert result.is_unsat
            assert solver.last_stats["cache_hit"]
            assert local.hits == 1 and local.misses == 0
            assert col.counters["store.remote.hits"] == 1
            assert col.counters.get("store.remote.rejected_certs", 0) == 0
            # Entry AND certificate adopted: the local copy re-audits.
            assert local._find_entry_file(digest) is not None
            check_certificate(local.load_certificate(digest))
            # Second lookup is a pure local hit — no remote traffic.
            gets_before = server.api.counters()["gets"]
            assert solver.check(*_unsat_query("rt_warm")).is_unsat
            assert server.api.counters()["gets"] == gets_before
        finally:
            server.close()

    def test_sat_model_replays_through_remote(self, tmp_path):
        server_dir = str(tmp_path / "srv")
        _seed(server_dir, ["x", "rt_sat"])  # second query is sat
        server = StoreServer(server_dir).start()
        try:
            solver = Solver(cache=RemoteVerdictStore(str(tmp_path / "cli"), server.url))
            result = solver.check(*_sat_query("rt_sat"))
            assert result.is_sat
            # The adopted model is remapped to *this* query's names and
            # satisfies it.
            assert result.model["rt_sat_x"] == _sat_value("rt_sat")
        finally:
            server.close()

    def test_remote_miss_counts_and_solves_locally(self, tmp_path):
        server = StoreServer(str(tmp_path / "srv")).start()
        try:
            local = RemoteVerdictStore(str(tmp_path / "cli"), server.url)
            with obs.tracing() as col:
                result = Solver(cache=local).check(*_unsat_query("rt_miss"))
            assert result.is_unsat
            assert col.counters["store.remote.misses"] == 1
            assert "store.remote.hits" not in col.counters
        finally:
            server.close()

    def test_certless_entry_rejected_by_default_accepted_with_knob(
        self, tmp_path, monkeypatch
    ):
        # Seed the server store without certificates.
        server_dir = str(tmp_path / "srv")
        monkeypatch.setenv("REPRO_NO_CERTS", "1")
        [digest] = _seed(server_dir, ["rt_nc"])
        monkeypatch.delenv("REPRO_NO_CERTS")
        server = StoreServer(server_dir).start()
        try:
            strict = RemoteVerdictStore(str(tmp_path / "strict"), server.url)
            with obs.tracing() as col:
                assert strict.lookup(digest, {}) is None
            assert col.counters["store.remote.rejected_certs"] == 1
            assert strict._find_entry_file(digest) is None  # not adopted

            trusting = RemoteVerdictStore(
                str(tmp_path / "trust"), server.url, verify_certs=False
            )
            assert trusting.lookup(digest, {}).is_unsat
            assert trusting._find_entry_file(digest) is not None
        finally:
            server.close()


class TestWriteBack:
    def test_sync_flush_pushes_entry_and_cert(self, tmp_path):
        server = StoreServer(str(tmp_path / "srv")).start()
        try:
            local_dir = str(tmp_path / "cli")
            local = RemoteVerdictStore(local_dir, server.url, async_flush=False)
            solver = Solver(cache=local)
            solver.check(*_unsat_query("wb_sync"))
            digest = solver.last_stats["digest"]
            assert local.spool_pending() == []  # flushed inline
            client = RemoteStoreClient(server.url)
            assert client.head_entry(digest)
            check_certificate(json.loads(client.get_cert(digest)))
        finally:
            server.close()

    def test_async_flush_drains_spool(self, tmp_path):
        server = StoreServer(str(tmp_path / "srv")).start()
        try:
            local = RemoteVerdictStore(str(tmp_path / "cli"), server.url)
            solver = Solver(cache=local)
            solver.check(*_unsat_query("wb_async"))
            digest = solver.last_stats["digest"]
            client = RemoteStoreClient(server.url)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if not local.spool_pending() and client.head_entry(digest):
                    break
                time.sleep(0.05)
            assert local.spool_pending() == []
            assert client.head_entry(digest)
        finally:
            server.close()

    def test_interrupted_flush_is_reported_not_skipped(self, tmp_path, capsys):
        """Satellite: spool files left by an interrupted flush surface
        in summary/index and in the gc/export/import CLI walks."""
        local_dir = str(tmp_path / "cli")
        local = RemoteVerdictStore(
            local_dir, "http://127.0.0.1:1", async_flush=False
        )
        local.store(DIG, {}, CheckResult("unsat"))  # flush attempt fails fast
        assert local.spool_pending() == [DIG]
        assert local.summary()["spool_pending"] == 1
        assert local.write_index()["spool_pending"] == 1

        archive = str(tmp_path / "out.tar.gz")
        assert store_main(["--store", local_dir, "export", archive]) == 0
        out = capsys.readouterr().out
        assert "1 entries still spooled for remote write-back" in out

        dst_dir = str(tmp_path / "dst")
        assert store_main(["--store", dst_dir, "import", archive]) == 0

        # gc of the spooled entry also clears its marker (nothing left
        # to flush) and says so.
        assert store_main(["--store", local_dir, "gc", "--keep", "0"]) == 0
        assert local.spool_pending() == []

    def test_flush_cli_pushes_backlog(self, tmp_path, capsys):
        local_dir = str(tmp_path / "cli")
        local = RemoteVerdictStore(local_dir, "http://127.0.0.1:1", async_flush=False)
        local.store(DIG, {}, CheckResult("unsat"))
        assert local.spool_pending() == [DIG]

        server = StoreServer(str(tmp_path / "srv")).start()
        try:
            _reset_breakers()
            assert (
                store_main(["--store", local_dir, "flush", "--remote", server.url])
                == 0
            )
            assert "flushed 1 spooled entries" in capsys.readouterr().out
            assert local.spool_pending() == []
            assert RemoteStoreClient(server.url).head_entry(DIG)
        finally:
            server.close()

    def test_flush_cli_without_remote_exits_2(self, tmp_path, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_REMOTE_STORE", raising=False)
        assert store_main(["--store", str(tmp_path / "s"), "flush"]) == 2
        assert "no remote configured" in capsys.readouterr().err


@pytest.fixture(autouse=True)
def _fast_timeouts(monkeypatch):
    monkeypatch.setenv("REPRO_REMOTE_TIMEOUT_S", "2")
    monkeypatch.setenv("REPRO_REMOTE_BACKOFF_S", "0")


# ---------------------------------------------------------------------------
# Fault injection


class FaultyStoreServer(StoreServer):
    """A store server that injects faults on a schedule.

    ``schedule`` is a list of modes consumed one per matching request:
    ``"500"`` (server error), ``"timeout"`` (stall past the client
    timeout), ``"truncate"`` (full Content-Length, half a body),
    ``"corrupt-cert"`` (valid JSON certificate that does not check),
    or ``None`` (serve normally).  Once the schedule is exhausted the
    server is healed and serves normally.
    """

    STALL_S = 3.0

    def __init__(self, store_dir: str, schedule=None, only_certs: bool = False):
        super().__init__(store_dir)
        self.schedule = list(schedule or [])
        self.only_certs = only_certs
        self.faults_fired = 0
        self._httpd.fault_hook = self._inject

    def _next_mode(self, method: str, path: str):
        if not self.schedule:
            return None
        # Faults target reads (the read-through path under test); the
        # client's background write-back traffic passes through so it
        # cannot consume the schedule out from under the assertions.
        if method not in ("GET", "HEAD"):
            return None
        if self.only_certs and not path.endswith("/cert"):
            return None
        mode = self.schedule.pop(0)
        if mode is not None:
            self.faults_fired += 1
        return mode

    def _inject(self, handler, method, path, body) -> bool:
        mode = self._next_mode(method, path)
        if mode is None:
            return False  # serve normally
        if mode == "500":
            handler._respond(500, b'{"error":"injected"}', "application/json", {})
            return True
        if mode == "timeout":
            time.sleep(self.STALL_S)
            handler._respond(200, b"{}", "application/json", {})
            return True
        if mode == "truncate":
            status, payload, ctype, headers = self.api.handle(method, path, body)
            handler.send_response(status)
            handler.send_header("Content-Type", ctype)
            # Advertise the full body, deliver half, hang up: the client
            # sees IncompleteRead.
            handler.send_header("Content-Length", str(max(len(payload), 2)))
            handler.end_headers()
            handler.wfile.write(payload[: len(payload) // 2])
            handler.close_connection = True
            return True
        if mode == "corrupt-cert":
            digest = path.rsplit("/", 2)[-2]
            bogus = json.dumps(
                {"kind": "drat", "digest": digest, "cnf": [], "proof": []}
            ).encode()
            handler._respond(200, bogus, "application/json", {})
            return True
        raise AssertionError(f"unknown fault mode {mode!r}")


class TestFaultInjection:
    @pytest.fixture
    def warm_dir(self, tmp_path):
        server_dir = str(tmp_path / "srv")
        self.digests = _seed(server_dir, ["fi_a", "fi_b"])
        return server_dir

    @pytest.mark.parametrize("mode", ["500", "timeout", "truncate"])
    def test_network_faults_degrade_to_local(self, tmp_path, warm_dir, mode, monkeypatch):
        if mode == "timeout":
            monkeypatch.setenv("REPRO_REMOTE_TIMEOUT_S", "0.3")
        server = FaultyStoreServer(warm_dir, schedule=[mode]).start()
        try:
            local = RemoteVerdictStore(str(tmp_path / "cli"), server.url)
            with obs.tracing() as col:
                result = Solver(cache=local).check(*_unsat_query("fi_a"))
            # The solve still completes — locally — and the failure is
            # counted, not raised.
            assert result.is_unsat
            assert col.counters["store.remote.errors"] >= 1
            assert server.faults_fired == 1
        finally:
            server.close()

    def test_corrupted_cert_never_adopted(self, tmp_path, warm_dir):
        # Every cert request serves a bogus-but-well-formed certificate.
        server = FaultyStoreServer(
            warm_dir, schedule=["corrupt-cert"] * 8, only_certs=True
        ).start()
        try:
            local = RemoteVerdictStore(str(tmp_path / "cli"), server.url)
            with obs.tracing() as col:
                result = Solver(cache=local).check(*_unsat_query("fi_a"))
            assert result.is_unsat  # solved locally
            assert col.counters["store.remote.rejected_certs"] >= 1
            # The poisoned entry and certificate were NOT adopted; the
            # local store holds only this client's own (sound) artifacts
            # whose certificates all check.
            for digest in local.digests():
                check_certificate(local.load_certificate(digest))
        finally:
            server.close()

    def test_client_recovers_when_server_heals(self, tmp_path, warm_dir):
        server = FaultyStoreServer(warm_dir, schedule=["500", "500"]).start()
        try:
            local = RemoteVerdictStore(str(tmp_path / "cli"), server.url)
            with obs.tracing() as col:
                # Both queries fault (breaker is disabled by the 0s
                # backoff fixture, so each one reaches the server)...
                assert Solver(cache=local).check(*_unsat_query("fi_a")).is_unsat
                assert Solver(cache=local).check(*_sat_query("fi_b")).is_sat
                assert col.counters["store.remote.errors"] == 2
                # ...schedule exhausted: the server is healed and the
                # next cold lookup is a remote hit.
                other = RemoteVerdictStore(str(tmp_path / "cli2"), server.url)
                assert Solver(cache=other).check(*_unsat_query("fi_a")).is_unsat
                assert col.counters["store.remote.hits"] == 1
        finally:
            server.close()

    def test_circuit_breaker_skips_dead_remote(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_REMOTE_BACKOFF_S", "60")
        monkeypatch.setenv("REPRO_REMOTE_TIMEOUT_S", "0.5")
        local = RemoteVerdictStore(str(tmp_path / "cli"), "http://127.0.0.1:1")
        with obs.tracing() as col:
            assert local.lookup("11" * 20, {}) is None  # opens the breaker
            start = time.perf_counter()
            for i in range(20):
                assert local.lookup(f"{i:02d}" * 20, {}) is None
            # Breaker open: the 20 follow-ups never touch the network.
            assert time.perf_counter() - start < 0.5
        assert col.counters["store.remote.errors"] == 1


class TestMidRunKill:
    def test_server_killed_mid_run_degrades_and_completes(self, tmp_path):
        server_dir = str(tmp_path / "srv")
        _seed(server_dir, ["mk_a", "mk_b"])
        server = StoreServer(server_dir).start()
        local = RemoteVerdictStore(str(tmp_path / "cli"), server.url)
        queries = [
            _unsat_query("mk_a"), _sat_query("mk_b"),
            _unsat_query("mk_c"), _sat_query("mk_d"), _unsat_query("mk_e"),
        ]
        expected = ["unsat", "sat", "unsat", "sat", "unsat"]
        with obs.tracing() as col:
            statuses = []
            for query in queries[:2]:
                statuses.append(Solver(cache=local).check(*query).status)
            assert col.counters["store.remote.hits"] == 2
            server.close()  # the fleet's store dies mid-run
            for query in queries[2:]:
                statuses.append(Solver(cache=local).check(*query).status)
        # Correct verdicts throughout, failures counted, never raised.
        assert statuses == expected
        assert col.counters["store.remote.errors"] > 0
        # The verdicts solved after the kill are still owed to the
        # remote: their spool markers survive and are reported.
        assert local.summary()["spool_pending"] > 0

    def test_fleet_degrades_with_dead_remote_env(self, tmp_path, monkeypatch):
        """run_obligations with REPRO_REMOTE_STORE pointing at a dead
        server: every obligation completes via open_store's remote tier
        degrading, across worker processes."""
        monkeypatch.setenv("REPRO_REMOTE_STORE", "http://127.0.0.1:1")
        monkeypatch.setenv("REPRO_REMOTE_TIMEOUT_S", "0.5")
        # The persistent scheduler pool pre-dates this env; use the
        # per-call pool so workers inherit it.
        monkeypatch.setenv("REPRO_NO_SCHEDULER", "1")
        from repro.sym import fresh_bv

        x = fresh_bv("fd.x", 32)
        y = fresh_bv("fd.y", 32)
        obligations = [
            Obligation.from_terms("fd-add", [((x + y) - y == x).term]),
            Obligation.from_terms("fd-xor", [((x ^ y) ^ y == x).term]),
            Obligation.from_terms("fd-absorb", [((x | y) & x == x).term]),
            Obligation.from_terms("fd-or", [((x | x) == x).term]),
        ]
        results, stats = run_obligations(
            obligations, jobs=2, cache_dir=str(tmp_path / "cache")
        )
        assert all(r.status == "proved" for r in results)


# ---------------------------------------------------------------------------
# Property-based round-trip (stdlib random, fixed seed)


class TestPropertyRoundTrip:
    def test_random_payloads_preserve_bytes_and_binding(self, tmp_path):
        rng = random.Random(0xC0FFEE)
        server = StoreServer(str(tmp_path / "srv")).start()
        client = RemoteStoreClient(server.url)
        local = RemoteVerdictStore(
            str(tmp_path / "cli"), server.url, verify_certs=False
        )
        try:
            for trial in range(40):
                digest = "".join(
                    rng.choice("0123456789abcdef")
                    for _ in range(rng.choice([16, 40, 64]))
                )
                status = rng.choice(["sat", "unsat"])
                entry = {"status": status}
                if status == "sat":
                    entry["model"] = {
                        f"c{i}": rng.randrange(2**32) for i in range(rng.randrange(4))
                    }
                raw = json.dumps(entry).encode()
                created = client.put_entry(digest, raw)
                assert created or client.head_entry(digest)
                # Bytes survive the wire both ways.
                assert client.get_entry(digest) == raw
                if rng.random() < 0.5:
                    cert = {
                        "kind": "drat" if status == "unsat" else "model",
                        "digest": digest,
                        "pad": "z" * rng.choice([10, 50_000]),
                    }
                    cert_raw = json.dumps(cert).encode()
                    client.put_cert(digest, cert_raw)
                    assert client.get_cert(digest) == cert_raw
                # Adoption binds the payload to the digest it was PUT
                # under: the local copy reads back identically.
                result = local.lookup(digest, {})
                assert result is not None and result.status == status
                with open(local._find_entry_file(digest), "rb") as handle:
                    assert handle.read() == raw
        finally:
            server.close()


# ---------------------------------------------------------------------------
# Two-process write-back race


RACE_DIGEST = "ee" + "77" * 20


def _race_writer(local_dir: str, url: str, worker: int, barrier) -> None:
    # _register=False: store() drops the spool marker but starts no
    # background flusher, so the flush happens exactly at the barrier.
    store = RemoteVerdictStore(local_dir, url, _register=False)
    result = CheckResult("sat", Model({"x": worker}))
    store.store(RACE_DIGEST, {"x": "c0"}, result)
    if store.spool_pending() != [RACE_DIGEST]:
        raise SystemExit(2)
    barrier.wait(timeout=30)  # both processes flush at once
    outcome = store.flush_spool()
    if outcome["pending"]:
        raise SystemExit(1)


class TestWriteBackRace:
    def test_two_processes_racing_one_digest_leave_one_valid_object(self, tmp_path):
        server_dir = str(tmp_path / "srv")
        server = StoreServer(server_dir).start()
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        procs = [
            ctx.Process(
                target=_race_writer,
                args=(str(tmp_path / f"cli{worker}"), server.url, worker, barrier),
            )
            for worker in (1, 2)
        ]
        try:
            for p in procs:
                p.start()
            for p in procs:
                p.join(timeout=60)
            assert all(p.exitcode == 0 for p in procs)
            # Exactly one object server-side, valid JSON from one writer
            # or the other, no leftover temp files.
            shard = os.path.join(server_dir, RACE_DIGEST[:2])
            assert os.listdir(shard) == [f"{RACE_DIGEST}.json"]
            entry = json.loads(RemoteStoreClient(server.url).get_entry(RACE_DIGEST))
            assert entry["status"] == "sat" and entry["model"]["c0"] in (1, 2)
            assert not [f for f in os.listdir(server_dir) if f.endswith(".tmp")]
        finally:
            server.close()


class TestServeMount:
    def test_daemon_serves_store_protocol_under_store(self, tmp_path):
        serve_app = pytest.importorskip("repro.serve.app")
        server = serve_app.VerificationServer(
            store_dir=str(tmp_path / "srv"), trace=False
        ).start()
        try:
            client = RemoteStoreClient(server.url)
            assert client.healthz()["ok"]
            raw = json.dumps({"status": "unsat"}).encode()
            assert client.put_entry(DIG, raw)
            assert client.get_entry(DIG) == raw
            assert client.head_entry(DIG)
            assert client.manifest([DIG])["entries"][DIG] is True
            # The daemon's own metrics see the store traffic.
            metrics = server.metrics()
            assert metrics["store"]["puts"] >= 1
            assert metrics["store"]["entries"] == 1
        finally:
            server.close()
