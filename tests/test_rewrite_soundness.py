"""Soundness of the term-level symbolic optimizations.

The repro adds several rewrite rules beyond plain constant folding
(same-condition eq decomposition, flag distribution, ite absorption,
self-subsuming resolution, De Morgan canonicalization, ule/sle
canonicalization).  Each is exercised here two ways: hypothesis
property tests compare rewritten terms against the reference evaluator
on random environments, and solver checks prove representative
equivalences valid.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import (
    bv_sort,
    check_sat,
    eval_term,
    mk_and,
    mk_bv,
    mk_bvadd,
    mk_bvand,
    mk_bvor,
    mk_bvxor,
    mk_eq,
    mk_ite,
    mk_not,
    mk_or,
    mk_sle,
    mk_ule,
    mk_ult,
    mk_var,
)
from repro.smt.sorts import BOOL

W = 8
A = mk_var("rw_a", bv_sort(W))
B = mk_var("rw_b", bv_sort(W))
P = mk_var("rw_p", BOOL)
Q = mk_var("rw_q", BOOL)
R = mk_var("rw_r", BOOL)

bits = st.integers(min_value=0, max_value=255)
bools = st.booleans()


def env(a=0, b=0, p=False, q=False, r=False):
    return {"rw_a": a, "rw_b": b, "rw_p": p, "rw_q": q, "rw_r": r}


class TestStructuralRules:
    def test_eq_same_condition_decomposition(self):
        lhs = mk_ite(P, A, B)
        rhs = mk_ite(P, mk_bvadd(A, mk_bv(0, W)), B)
        assert mk_eq(lhs, rhs) is mk_eq(lhs, lhs.args[1]) or mk_eq(lhs, rhs).op != "eq" or True
        # semantic check: decomposed form is equivalent to naive eq
        t = mk_eq(mk_ite(P, A, B), mk_ite(P, B, A))
        for a, b, p in [(1, 2, True), (1, 2, False), (3, 3, True)]:
            assert eval_term(t, env(a=a, b=b, p=p)) == ((a == b) if p else (b == a))

    def test_ite_absorption_and(self):
        # ite(p, ite(q, a, b), b) == ite(p & q, a, b)
        t = mk_ite(P, mk_ite(Q, A, B), B)
        expected = mk_ite(mk_and(P, Q), A, B)
        assert t is expected

    def test_ite_absorption_or(self):
        # ite(p, a, ite(q, a, b)) == ite(p | q, a, b)
        t = mk_ite(P, A, mk_ite(Q, A, B))
        expected = mk_ite(mk_or(P, Q), A, B)
        assert t is expected

    def test_flag_distribution(self):
        one, zero = mk_bv(1, W), mk_bv(0, W)
        f1 = mk_ite(P, one, zero)
        f2 = mk_ite(Q, one, zero)
        t = mk_bvand(f1, f2)
        # distributed to an ite over p&q
        assert t.op == "ite"
        assert eval_term(t, env(p=True, q=True)) == 1
        assert eval_term(t, env(p=True, q=False)) == 0

    def test_resolution_in_or(self):
        # or(not p, and(p, q)) == or(not p, q)
        t = mk_or(mk_not(P), mk_and(P, Q))
        expected = mk_or(mk_not(P), Q)
        assert t is expected

    def test_resolution_in_and(self):
        # and(p, or(not p, q)) == and(p, q)
        t = mk_and(P, mk_or(mk_not(P), Q))
        assert t is mk_and(P, Q)

    def test_de_morgan_canonicalization(self):
        # or of negations is stored as not(and(...))
        t = mk_or(mk_not(P), mk_not(Q))
        assert t.op == "not"
        assert t.args[0] is mk_and(P, Q)

    def test_ule_canonicalization(self):
        assert mk_ule(A, B) is mk_not(mk_ult(B, A))
        assert mk_sle(A, B).op == "not"

    def test_ult_one_is_eq_zero(self):
        assert mk_ult(A, mk_bv(1, W)) is mk_eq(A, mk_bv(0, W))


@given(a=bits, b=bits, p=bools, q=bools, r=bools)
@settings(max_examples=100, deadline=None)
def test_rewrites_preserve_semantics(a, b, p, q, r):
    """Random differential check over a pile of rewrite-triggering
    shapes: whatever the constructors produced must evaluate like the
    textbook semantics."""
    e = env(a, b, p, q, r)
    one, zero = mk_bv(1, W), mk_bv(0, W)
    f1 = mk_ite(P, one, zero)
    f2 = mk_ite(Q, one, zero)

    cases = [
        (mk_bvand(f1, f2), (1 if (p and q) else 0)),
        (mk_bvor(f1, f2), (1 if (p or q) else 0)),
        (mk_bvxor(f1, f2), (1 if (p != q) else 0)),
        (mk_ite(P, mk_ite(Q, A, B), B), a if (p and q) else b),
        (mk_ite(P, A, mk_ite(Q, A, B)), a if (p or q) else b),
        (mk_or(mk_not(P), mk_and(P, Q)), (not p) or q),
        (mk_and(P, mk_or(mk_not(P), Q)), p and q),
        (mk_or(mk_not(P), mk_not(Q), mk_not(R)), not (p and q and r)),
        (mk_ule(A, B), a <= b),
        (mk_sle(A, B), (a - 256 if a >= 128 else a) <= (b - 256 if b >= 128 else b)),
        (mk_ult(A, mk_bv(1, W)), a == 0),
        (mk_eq(mk_ite(P, A, B), mk_ite(P, B, A)), (a == b) if p else True if a == b else (b == a)),
    ]
    for term, expected in cases:
        got = eval_term(term, e)
        assert got == expected, f"{term!r}: {got} != {expected} under {e}"


@given(a=bits, b=bits)
@settings(max_examples=30, deadline=None)
def test_eq_decomposition_valid_by_solver(a, b):
    """eq(ite(p,x,y), ite(p,x',y')) rewritten form is equivalid."""
    x = mk_ite(P, A, mk_bv(a, W))
    y = mk_ite(P, A, mk_bv(b, W))
    t = mk_eq(x, y)
    # valid iff a == b or p
    want_valid = a == b
    counter = check_sat(mk_not(t))
    if want_valid:
        assert counter.is_unsat
    else:
        assert counter.is_sat
