"""Tests for the assembler/linker substitute: labels, fixups, pseudo
instructions, symbols, and image structure."""

import pytest

from repro.core import run_interpreter
from repro.core.image import build_memory
from repro.riscv import AsmError, Assembler, CpuState, RiscvInterp, decode
from repro.sym import bv_val, new_context

XLEN = 64


def run(asm, **regs):
    image = asm.assemble()
    with new_context():
        cpu = CpuState.symbolic(XLEN, image.entry or image.base, build_memory(image, addr_width=XLEN))
        from repro.riscv import reg_num

        for name, val in regs.items():
            cpu.set_reg(reg_num(name), bv_val(val, XLEN))
        return run_interpreter(RiscvInterp(image, xlen=XLEN), cpu).merged()


class TestLabels:
    def test_forward_branch(self):
        asm = Assembler(base=0x1000, xlen=XLEN)
        asm.beqz("a0", "skip")
        asm.li("a1", 1)
        asm.label("skip")
        asm.mret()
        final = run(asm, a0=0, a1=0)
        assert final.reg(11).as_int() == 0

    def test_backward_jump(self):
        asm = Assembler(base=0x1000, xlen=XLEN)
        asm.li("a1", 0)
        asm.label("loop")
        asm.addi("a1", "a1", 1)
        asm.addi("a0", "a0", -1)
        asm.bnez("a0", "loop")
        asm.mret()
        final = run(asm, a0=3)
        assert final.reg(11).as_int() == 3

    def test_duplicate_label_rejected(self):
        asm = Assembler()
        asm.label("x")
        with pytest.raises(AsmError):
            asm.label("x")

    def test_undefined_label_rejected(self):
        asm = Assembler()
        asm.j("nowhere")
        with pytest.raises(AsmError):
            asm.assemble()

    def test_addr_of(self):
        asm = Assembler(base=0x1000, xlen=XLEN)
        asm.nop()
        asm.label("here")
        asm.nop()
        assert asm.addr_of("here") == 0x1004


class TestPseudoInstructions:
    def test_mv_not_neg(self):
        asm = Assembler(base=0x1000, xlen=XLEN)
        asm.mv("a1", "a0")
        asm.not_("a2", "a0")
        asm.neg("a3", "a0")
        asm.mret()
        final = run(asm, a0=5)
        assert final.reg(11).as_int() == 5
        assert final.reg(12).as_int() == ~5 & (2**64 - 1)
        assert final.reg(13).as_int() == (-5) & (2**64 - 1)

    def test_seqz_snez(self):
        asm = Assembler(base=0x1000, xlen=XLEN)
        asm.seqz("a1", "a0")
        asm.snez("a2", "a0")
        asm.mret()
        final = run(asm, a0=0)
        assert final.reg(11).as_int() == 1
        assert final.reg(12).as_int() == 0

    def test_call_ret(self):
        asm = Assembler(base=0x1000, xlen=XLEN)
        asm.call("fn")
        asm.mret()
        asm.label("fn")
        asm.li("a1", 7)
        asm.ret()
        final = run(asm)
        assert final.reg(11).as_int() == 7

    def test_li_widths(self):
        for value in (0, 1, -1, 2047, -2048, 0x12345, -0x70000000, 0x7FFFFFFF):
            asm = Assembler(base=0x1000, xlen=XLEN)
            asm.li("a1", value)
            asm.mret()
            final = run(asm)
            assert final.reg(11).as_int() == value & (2**64 - 1), hex(value)

    def test_li_too_large_rejected(self):
        asm = Assembler(base=0x1000, xlen=XLEN)
        with pytest.raises(AsmError):
            asm.li("a1", 1 << 40)


class TestImage:
    def test_entry_label(self):
        asm = Assembler(base=0x1000, xlen=XLEN)
        asm.nop()
        asm.label("start")
        asm.mret()
        asm.entry("start")
        image = asm.assemble()
        assert image.entry == 0x1004

    def test_data_symbols_in_image(self):
        asm = Assembler(base=0x1000, xlen=XLEN)
        asm.data_symbol("tbl", 0x8000, 16, ("array", 4, ("cell", 4)))
        asm.nop()
        image = asm.assemble()
        assert image.symbol("tbl").size == 16
        with pytest.raises(KeyError):
            image.symbol("missing")

    def test_text_range(self):
        asm = Assembler(base=0x1000, xlen=XLEN)
        asm.nop()
        asm.nop()
        image = asm.assemble()
        assert image.text_range() == (0x1000, 0x1008)

    def test_emitted_words_decode(self):
        """Every emitted word decodes (and decoder-validates)."""
        from repro.riscv import decode_validated

        asm = Assembler(base=0x1000, xlen=XLEN)
        asm.li("a0", 0x12345)
        asm.beqz("a0", "end")
        asm.call("end")
        asm.label("end")
        asm.csrrw("zero", "mtvec", "a0")
        asm.mret()
        image = asm.assemble()
        for addr, word in image.words.items():
            decode_validated(word, XLEN)
