"""Encoder/decoder tests, including the §3.4 validation story."""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.riscv import DecodeError, Insn, decode, decode_validated, encode
from repro.riscv.insn import SPEC

regs = st.integers(min_value=0, max_value=31)


def roundtrip(insn: Insn, xlen=64) -> Insn:
    return decode(encode(insn, xlen), xlen)


class TestRoundTrip:
    @given(rd=regs, rs1=regs, rs2=regs)
    @settings(max_examples=25, deadline=None)
    def test_r_type(self, rd, rs1, rs2):
        for name in ("add", "sub", "xor", "sltu", "mul", "divu", "remw", "sraw"):
            insn = Insn(name, rd=rd, rs1=rs1, rs2=rs2)
            assert roundtrip(insn) == insn

    @given(rd=regs, rs1=regs, imm=st.integers(min_value=-2048, max_value=2047))
    @settings(max_examples=25, deadline=None)
    def test_i_type(self, rd, rs1, imm):
        for name in ("addi", "andi", "ori", "xori", "slti", "lw", "ld", "lbu", "jalr"):
            insn = Insn(name, rd=rd, rs1=rs1, imm=imm)
            assert roundtrip(insn) == insn

    @given(rd=regs, rs1=regs, shamt=st.integers(min_value=0, max_value=63))
    @settings(max_examples=25, deadline=None)
    def test_shifts_rv64(self, rd, rs1, shamt):
        for name in ("slli", "srli", "srai"):
            insn = Insn(name, rd=rd, rs1=rs1, imm=shamt)
            assert roundtrip(insn) == insn

    @given(rd=regs, rs1=regs, shamt=st.integers(min_value=0, max_value=31))
    @settings(max_examples=15, deadline=None)
    def test_shifts_w(self, rd, rs1, shamt):
        for name in ("slliw", "srliw", "sraiw"):
            insn = Insn(name, rd=rd, rs1=rs1, imm=shamt)
            assert roundtrip(insn) == insn

    @given(rs1=regs, rs2=regs, imm=st.integers(min_value=-2048, max_value=2047))
    @settings(max_examples=25, deadline=None)
    def test_s_type(self, rs1, rs2, imm):
        for name in ("sb", "sh", "sw", "sd"):
            insn = Insn(name, rs1=rs1, rs2=rs2, imm=imm)
            assert roundtrip(insn) == insn

    @given(rs1=regs, rs2=regs, imm=st.integers(min_value=-2048, max_value=2047))
    @settings(max_examples=25, deadline=None)
    def test_b_type(self, rs1, rs2, imm):
        imm = imm * 2  # branch offsets are even
        for name in ("beq", "bne", "blt", "bgeu"):
            insn = Insn(name, rs1=rs1, rs2=rs2, imm=imm)
            assert roundtrip(insn) == insn

    @given(rd=regs, imm=st.integers(min_value=-(2**19), max_value=2**19 - 1))
    @settings(max_examples=25, deadline=None)
    def test_j_type(self, rd, imm):
        insn = Insn("jal", rd=rd, imm=imm * 2)
        assert roundtrip(insn) == insn

    @given(rd=regs, imm=st.integers(min_value=0, max_value=0xFFFFF))
    @settings(max_examples=25, deadline=None)
    def test_u_type(self, rd, imm):
        for name in ("lui", "auipc"):
            insn = Insn(name, rd=rd, imm=imm << 12)
            assert roundtrip(insn) == insn

    @given(rd=regs, rs1=regs)
    @settings(max_examples=15, deadline=None)
    def test_csr(self, rd, rs1):
        from repro.riscv.insn import CSRS

        for name in ("csrrw", "csrrs", "csrrc"):
            insn = Insn(name, rd=rd, rs1=rs1, imm=CSRS["mtvec"])
            assert roundtrip(insn) == insn
        for name in ("csrrwi", "csrrsi", "csrrci"):
            insn = Insn(name, rd=rd, rs1=rs1, imm=CSRS["mscratch"])
            assert roundtrip(insn) == insn

    def test_sys(self):
        for name in ("ecall", "ebreak", "mret", "wfi"):
            assert roundtrip(Insn(name)) == Insn(name)


class TestValidation:
    def test_decode_validated_accepts_all_specs(self):
        for name, spec in SPEC.items():
            if spec.fmt == "R":
                insn = Insn(name, rd=1, rs1=2, rs2=3)
            elif spec.fmt in ("I",):
                insn = Insn(name, rd=1, rs1=2, imm=5) if name not in ("fence", "fence.i") else Insn(name)
            elif spec.fmt == "SHIFT":
                insn = Insn(name, rd=1, rs1=2, imm=3)
            elif spec.fmt == "S":
                insn = Insn(name, rs1=2, rs2=3, imm=8)
            elif spec.fmt == "B":
                insn = Insn(name, rs1=2, rs2=3, imm=16)
            elif spec.fmt == "U":
                insn = Insn(name, rd=1, imm=0x1000)
            elif spec.fmt == "J":
                insn = Insn(name, rd=1, imm=32)
            elif spec.fmt in ("CSR", "CSRI"):
                insn = Insn(name, rd=1, rs1=2, imm=0x305)
            else:
                insn = Insn(name)
            assert decode_validated(encode(insn)) == insn

    def test_garbage_word_rejected(self):
        with pytest.raises(DecodeError):
            decode(0xFFFFFFFF)
        with pytest.raises(DecodeError):
            decode(0x00000000)

    def test_bad_system_fields_rejected(self):
        # mret with rd != 0 is not a valid encoding.
        word = encode(Insn("mret")) | (1 << 7)
        with pytest.raises(DecodeError):
            decode(word)

    def test_encode_range_checks(self):
        from repro.riscv import EncodeError

        with pytest.raises(EncodeError):
            encode(Insn("addi", rd=1, rs1=1, imm=5000))
        with pytest.raises(EncodeError):
            encode(Insn("beq", rs1=1, rs2=2, imm=3))  # odd offset
        with pytest.raises(EncodeError):
            encode(Insn("lui", rd=1, imm=0x123))  # low bits set
