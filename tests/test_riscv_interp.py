"""Interpreter semantics tests, in the style of riscv-tests (§6.4:
"we wrote new interpreter tests and reused existing ones").

Each case assembles a tiny program, runs it concretely through the
lifted interpreter, and checks the architectural result.
"""

import pytest

from repro.core import run_interpreter
from repro.core.image import build_memory
from repro.core.memory import Memory
from repro.riscv import Assembler, CpuState, RiscvInterp
from repro.sym import bv_val, new_context, prove, sym_implies, verify_vcs

XLEN = 64
MASK = (1 << XLEN) - 1


def run_program(build, regs_in=None, xlen=XLEN, data=None, check_vcs=True):
    """Assemble via ``build(asm)``, run to mret, return final state."""
    asm = Assembler(base=0x1000, xlen=xlen)
    if data:
        for name, addr, size, shape in data:
            asm.data_symbol(name, addr, size, shape)
    build(asm)
    asm.mret()
    image = asm.assemble()
    mem = build_memory(image, addr_width=xlen)
    interp = RiscvInterp(image, xlen=xlen)
    with new_context() as ctx:
        cpu = CpuState.symbolic(xlen, 0x1000, mem)
        for reg, value in (regs_in or {}).items():
            from repro.riscv import reg_num

            cpu.set_reg(reg_num(reg), bv_val(value, xlen))
        final = run_interpreter(interp, cpu).merged()
        if check_vcs:
            assert verify_vcs(ctx).proved, "implicit VCs failed"
    return final


def reg_val(state, name):
    from repro.riscv import reg_num

    return state.reg(reg_num(name)).as_int()


class TestAluRegister:
    def test_add_sub_wrap(self):
        final = run_program(
            lambda a: (a.add("a2", "a0", "a1"), a.sub("a3", "a0", "a1")),
            {"a0": MASK, "a1": 2},
        )
        assert reg_val(final, "a2") == 1
        assert reg_val(final, "a3") == MASK - 2

    def test_logic(self):
        final = run_program(
            lambda a: (a.and_("a2", "a0", "a1") if False else a.emit("and", rd=12, rs1=10, rs2=11),
                       a.emit("or", rd=13, rs1=10, rs2=11),
                       a.xor("a4", "a0", "a1")),
            {"a0": 0xF0F0, "a1": 0x0FF0},
        )
        assert reg_val(final, "a2") == 0x00F0
        assert reg_val(final, "a3") == 0xFFF0
        assert reg_val(final, "a4") == 0xFF00

    def test_slt_sltu(self):
        final = run_program(
            lambda a: (a.slt("a2", "a0", "a1"), a.sltu("a3", "a0", "a1")),
            {"a0": MASK, "a1": 1},  # signed: -1 < 1; unsigned: huge > 1
        )
        assert reg_val(final, "a2") == 1
        assert reg_val(final, "a3") == 0

    def test_shifts_by_register(self):
        final = run_program(
            lambda a: (a.sll("a2", "a0", "a1"), a.srl("a3", "a0", "a1"), a.sra("a4", "a0", "a1")),
            {"a0": 1 << 63, "a1": 4},
        )
        assert reg_val(final, "a2") == 0
        assert reg_val(final, "a3") == 1 << 59
        assert reg_val(final, "a4") == 0xF8 << 56

    def test_shift_amount_masked_to_xlen(self):
        # Shifting by 64+4 behaves like shifting by 4 (low 6 bits).
        final = run_program(lambda a: a.sll("a2", "a0", "a1"), {"a0": 1, "a1": 68})
        assert reg_val(final, "a2") == 16


class TestMulDiv:
    def test_mul(self):
        final = run_program(lambda a: a.mul("a2", "a0", "a1"), {"a0": MASK, "a1": 3})
        assert reg_val(final, "a2") == MASK - 2  # -1 * 3 = -3

    def test_mulh_signed(self):
        final = run_program(lambda a: a.mulh("a2", "a0", "a1"), {"a0": MASK, "a1": 2})
        assert reg_val(final, "a2") == MASK  # (-1 * 2) >> 64 = -1

    def test_mulhu(self):
        final = run_program(lambda a: a.mulhu("a2", "a0", "a1"), {"a0": MASK, "a1": 2})
        assert reg_val(final, "a2") == 1

    def test_div_by_zero(self):
        final = run_program(
            lambda a: (a.div("a2", "a0", "a1"), a.divu("a3", "a0", "a1"),
                       a.rem("a4", "a0", "a1"), a.remu("a5", "a0", "a1")),
            {"a0": 7, "a1": 0},
        )
        assert reg_val(final, "a2") == MASK  # -1
        assert reg_val(final, "a3") == MASK
        assert reg_val(final, "a4") == 7
        assert reg_val(final, "a5") == 7

    def test_div_overflow(self):
        int_min = 1 << 63
        final = run_program(
            lambda a: (a.div("a2", "a0", "a1"), a.rem("a3", "a0", "a1")),
            {"a0": int_min, "a1": MASK},  # INT_MIN / -1
        )
        assert reg_val(final, "a2") == int_min
        assert reg_val(final, "a3") == 0

    def test_signed_division(self):
        final = run_program(
            lambda a: (a.div("a2", "a0", "a1"), a.rem("a3", "a0", "a1")),
            {"a0": (-7) & MASK, "a1": 2},
        )
        assert reg_val(final, "a2") == (-3) & MASK  # truncates toward zero
        assert reg_val(final, "a3") == (-1) & MASK


class TestWForms:
    def test_addw_sign_extends(self):
        final = run_program(lambda a: a.addw("a2", "a0", "a1"), {"a0": 0x7FFFFFFF, "a1": 1})
        assert reg_val(final, "a2") == 0xFFFFFFFF80000000

    def test_subw(self):
        final = run_program(lambda a: a.subw("a2", "a0", "a1"), {"a0": 0, "a1": 1})
        assert reg_val(final, "a2") == MASK

    def test_sraiw(self):
        final = run_program(lambda a: a.sraiw("a2", "a0", 4), {"a0": 0x80000000})
        assert reg_val(final, "a2") == 0xFFFFFFFFF8000000

    def test_addiw_truncates_then_extends(self):
        final = run_program(lambda a: a.addiw("a2", "a0", 0), {"a0": 0x1_FFFF_FFFF})
        assert reg_val(final, "a2") == MASK


class TestImmediates:
    def test_lui_sign_extends_rv64(self):
        final = run_program(lambda a: a.lui("a2", 0x80000000 & 0xFFFFF000))
        assert reg_val(final, "a2") == 0xFFFFFFFF80000000

    def test_li_pseudo_large(self):
        final = run_program(lambda a: a.li("a2", 0x12345))
        assert reg_val(final, "a2") == 0x12345

    def test_li_pseudo_negative(self):
        final = run_program(lambda a: a.li("a2", -5))
        assert reg_val(final, "a2") == MASK - 4

    def test_li_with_high_low_carry(self):
        # value whose low 12 bits >= 0x800 forces the lui+addi carry fix
        final = run_program(lambda a: a.li("a2", 0x12FFF))
        assert reg_val(final, "a2") == 0x12FFF

    def test_auipc(self):
        final = run_program(lambda a: a.auipc("a2", 0x1000))
        assert reg_val(final, "a2") == 0x1000 + 0x1000  # base + imm

    def test_x0_writes_ignored(self):
        final = run_program(lambda a: a.addi("zero", "a0", 5), {"a0": 7})
        assert reg_val(final, "zero") == 0


class TestMemory:
    DATA = [("buf", 0x8000, 32, ("array", 4, ("cell", 8)))]

    def test_store_load_roundtrip(self):
        def build(a):
            a.la("t0", "buf")
            a.sd("a0", 8, "t0")
            a.ld("a2", 8, "t0")

        final = run_program(build, {"a0": 0x1122334455667788}, data=self.DATA)
        assert reg_val(final, "a2") == 0x1122334455667788

    def test_byte_access_sign_extension(self):
        def build(a):
            a.la("t0", "buf")
            a.sd("a0", 0, "t0")
            a.lb("a2", 0, "t0")
            a.lbu("a3", 0, "t0")
            a.lh("a4", 0, "t0")
            a.lhu("a5", 0, "t0")
            a.lw("a6", 0, "t0")
            a.lwu("a7", 0, "t0")

        final = run_program(build, {"a0": 0xFFFF8881}, data=self.DATA)
        assert reg_val(final, "a2") == (-127) & MASK  # 0x81 sign-extended
        assert reg_val(final, "a3") == 0x81
        assert reg_val(final, "a4") == 0xFFFFFFFFFFFF8881
        assert reg_val(final, "a5") == 0x8881
        assert reg_val(final, "a6") == 0xFFFFFFFFFFFF8881
        assert reg_val(final, "a7") == 0xFFFF8881

    def test_symbolic_index_store(self):
        """A store through a symbolic index exercises the §4 memory
        optimization end-to-end through real RISC-V code."""
        def build(a):
            a.la("t0", "buf")
            a.slli("t1", "a0", 3)  # idx * 8
            a.add("t0", "t0", "t1")
            a.sd("a1", 0, "t0")

        asm = Assembler(base=0x1000, xlen=XLEN)
        asm.data_symbol("buf", 0x8000, 32, ("array", 4, ("cell", 8)))
        build(asm)
        asm.mret()
        image = asm.assemble()
        interp = RiscvInterp(image, xlen=XLEN)
        with new_context() as ctx:
            cpu = CpuState.symbolic(XLEN, 0x1000, build_memory(image, addr_width=XLEN))
            idx, val = cpu.reg(10), cpu.reg(11)
            final = run_interpreter(interp, cpu).merged()
            third = final.mem.region("buf").block.load(bv_val(16, XLEN), 8, final.mem.opts)
            assert prove(sym_implies(idx == 2, third == val)).proved
            # The bounds side condition fails without an index check...
            assert not verify_vcs(ctx).proved
        with new_context() as ctx:
            cpu = CpuState.symbolic(XLEN, 0x1000, build_memory(image, addr_width=XLEN))
            idx = cpu.reg(10)
            with ctx.under(idx < 4):
                run_interpreter(interp, cpu).merged()
            # ...and holds with it.
            assert verify_vcs(ctx).proved


class TestControlFlow:
    def test_branch_taken_and_merge(self):
        def build(a):
            a.beqz("a0", "iszero")
            a.li("a2", 1)
            a.j("done")
            a.label("iszero")
            a.li("a2", 2)
            a.label("done")

        assert reg_val(run_program(build, {"a0": 0}), "a2") == 2
        assert reg_val(run_program(build, {"a0": 5}), "a2") == 1

    def test_bounded_loop(self):
        """Sum 1..5 with a loop: finite trip count, engine terminates."""
        def build(a):
            a.li("a2", 0)
            a.li("t0", 5)
            a.label("loop")
            a.beqz("t0", "done")
            a.add("a2", "a2", "t0")
            a.addi("t0", "t0", -1)
            a.j("loop")
            a.label("done")

        assert reg_val(run_program(build, {}), "a2") == 15

    def test_function_call(self):
        def build(a):
            a.call("double")
            a.j("done")
            a.label("double")
            a.slli("a0", "a0", 1)
            a.ret()
            a.label("done")
            a.mv("a2", "a0")

        assert reg_val(run_program(build, {"a0": 21}), "a2") == 42

    def test_symbolic_branch_produces_ite(self):
        asm = Assembler(base=0x1000, xlen=XLEN)
        asm.beqz("a0", "iszero")
        asm.li("a2", 1)
        asm.j("done")
        asm.label("iszero")
        asm.li("a2", 2)
        asm.label("done")
        asm.mret()
        image = asm.assemble()
        with new_context():
            cpu = CpuState.symbolic(XLEN, 0x1000, Memory([], addr_width=XLEN))
            a0 = cpu.reg(10)
            paths = run_interpreter(RiscvInterp(image, xlen=XLEN), cpu)
            final = paths.merged()
            assert len(paths.finals) == 1  # merged at the join
            assert prove(sym_implies(a0 == 0, final.reg(12) == 2)).proved
            assert prove(sym_implies(a0 != 0, final.reg(12) == 1)).proved


class TestCsr:
    def test_csrrw_swap(self):
        def build(a):
            a.csrrw("a2", "mscratch", "a0")
            a.csrrw("a3", "mscratch", "a1")

        final = run_program(build, {"a0": 0x111, "a1": 0x222})
        assert reg_val(final, "a3") == 0x111
        assert final.csr("mscratch").as_int() == 0x222

    def test_csrrs_set_bits(self):
        def build(a):
            a.csrrw("zero", "mstatus", "a0")
            a.csrrs("a2", "mstatus", "a1")

        final = run_program(build, {"a0": 0x8, "a1": 0x2})
        assert final.csr("mstatus").as_int() == 0xA
        assert reg_val(final, "a2") == 0x8

    def test_csrrc_clear_bits(self):
        def build(a):
            a.csrrw("zero", "mstatus", "a0")
            a.csrrc("zero", "mstatus", "a1")

        final = run_program(build, {"a0": 0xF, "a1": 0x3})
        assert final.csr("mstatus").as_int() == 0xC

    def test_csr_immediates(self):
        def build(a):
            a.csrrwi("zero", "mscratch", 5)
            a.csrrsi("zero", "mscratch", 2)
            a.csrrci("zero", "mscratch", 1)

        final = run_program(build, {})
        assert final.csr("mscratch").as_int() == 6

    def test_mret_jumps_to_mepc(self):
        asm = Assembler(base=0x1000, xlen=XLEN)
        asm.mret()
        image = asm.assemble()
        with new_context():
            cpu = CpuState.symbolic(XLEN, 0x1000, Memory([], addr_width=XLEN))
            final = run_interpreter(RiscvInterp(image, xlen=XLEN), cpu).merged()
            assert prove(final.pc == cpu.csr("mepc")).proved
            assert final.exited


class TestFaults:
    def test_ecall_in_machine_mode_flagged(self):
        asm = Assembler(base=0x1000, xlen=XLEN)
        asm.ecall()
        image = asm.assemble()
        with new_context() as ctx:
            cpu = CpuState.symbolic(XLEN, 0x1000, Memory([], addr_width=XLEN))
            run_interpreter(RiscvInterp(image, xlen=XLEN), cpu)
            assert not verify_vcs(ctx).proved

    def test_fetch_outside_text_raises(self):
        asm = Assembler(base=0x1000, xlen=XLEN)
        asm.j(0x100)  # jump past the end
        image = asm.assemble()
        with new_context():
            cpu = CpuState.symbolic(XLEN, 0x1000, Memory([], addr_width=XLEN))
            with pytest.raises(KeyError):
                run_interpreter(RiscvInterp(image, xlen=XLEN), cpu)


class TestRv32:
    def test_basic_alu_rv32(self):
        final = run_program(lambda a: a.add("a2", "a0", "a1"), {"a0": 0xFFFFFFFF, "a1": 2}, xlen=32)
        assert reg_val(final, "a2") == 1

    def test_li_rv32(self):
        final = run_program(lambda a: a.li("a2", 0xDEADB000 - (1 << 32)), {}, xlen=32)
        assert reg_val(final, "a2") == 0xDEADB000
