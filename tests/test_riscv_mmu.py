"""Tests for the three-level page-walk model (§6.1)."""

from repro.core.memory import MCell, MUniform, Memory, Region
from repro.riscv.mmu import PAGE_SIZE, PTE_R, PTE_U, PTE_V, PTE_W, PTE_X, make_pte, walk
from repro.riscv.pmp import PMP_A_NAPOT, PMP_A_SHIFT, PMP_R, napot_region, pmp_check
from repro.sym import bv_val, fresh_bv, new_context, prove, sym_implies

W = 32

ROOT = 0x0001_0000
L2 = 0x0001_1000
L3 = 0x0001_2000
DATA_PPN = 0x80  # physical page 0x80000


def make_tables(leaf_flags=PTE_V | PTE_R | PTE_W, vpn=(0, 0, 5)):
    """Root -> L2 -> L3 with one mapping at the given VPN path."""
    def table(entries):
        cells = [MCell(4) for _ in range(16)]
        for idx, val in entries.items():
            cells[idx] = MCell(4, val)
        return MUniform(cells)

    regions = [
        Region("root_pt", ROOT, table({vpn[0]: make_pte(L2 >> 12, PTE_V)})),
        Region("l2_pt", L2, table({vpn[1]: make_pte(L3 >> 12, PTE_V)})),
        Region("l3_pt", L3, table({vpn[2]: make_pte(DATA_PPN, leaf_flags)})),
    ]
    return Memory(regions, addr_width=W)


def vaddr_for(vpn, off=0x123):
    return bv_val((vpn[0] << 32) if False else (vpn[0] << (12 + 20)) | (vpn[1] << (12 + 10)) | (vpn[2] << 12) | off, W)


class TestWalk:
    def test_successful_translation(self):
        with new_context():
            mem = make_tables()
            result = walk(mem, bv_val(ROOT, W), vaddr_for((0, 0, 5)))
            assert prove(result.ok).proved
            assert prove(result.paddr == (DATA_PPN << 12) + 0x123).proved
            assert prove(result.readable).proved
            assert prove(result.writable).proved
            assert prove(~result.executable).proved

    def test_unmapped_vpn_fails(self):
        with new_context():
            mem = make_tables()
            result = walk(mem, bv_val(ROOT, W), vaddr_for((0, 0, 6)))
            assert prove(~result.ok).proved

    def test_invalid_leaf_fails(self):
        with new_context():
            mem = make_tables(leaf_flags=PTE_R | PTE_W)  # V bit clear
            result = walk(mem, bv_val(ROOT, W), vaddr_for((0, 0, 5)))
            assert prove(~result.ok).proved

    def test_permission_bits_propagate(self):
        with new_context():
            mem = make_tables(leaf_flags=PTE_V | PTE_X | PTE_U)
            result = walk(mem, bv_val(ROOT, W), vaddr_for((0, 0, 5)))
            assert prove(result.executable).proved
            assert prove(result.user).proved
            assert prove(~result.writable).proved

    def test_symbolic_offset_stays_in_page(self):
        with new_context():
            mem = make_tables()
            off = fresh_bv("mmu.off", W)
            # Construct the vaddr as concat(vpn bits, offset bits) so
            # the VPN slices stay concrete under a symbolic offset.
            va = bv_val(5, 20).concat(off.trunc(12))
            result = walk(mem, bv_val(ROOT, W), va)
            base = DATA_PPN << 12
            assert prove(
                sym_implies(result.ok, (result.paddr >= base) & (result.paddr < base + PAGE_SIZE))
            ).proved


class TestWalkPlusPmp:
    def test_translation_gated_by_pmp(self):
        """The §6.1 composition: whatever the OS put in the page
        tables, the *physical* target must pass the PMP check."""
        with new_context():
            mem = make_tables()
            result = walk(mem, bv_val(ROOT, W), vaddr_for((0, 0, 5)))
            csrs = {n: bv_val(0, 64) for n in ["pmpcfg0"] + [f"pmpaddr{i}" for i in range(8)]}
            # PMP region covers exactly the mapped physical page.
            csrs["pmpcfg0"] = bv_val(PMP_R | (PMP_A_NAPOT << PMP_A_SHIFT), 64)
            csrs["pmpaddr0"] = bv_val(napot_region(DATA_PPN << 12, PAGE_SIZE), 64)
            allowed = pmp_check(csrs, result.paddr.zext(64), "r")
            assert prove(sym_implies(result.ok, allowed)).proved
            # And a region elsewhere denies it.
            csrs["pmpaddr0"] = bv_val(napot_region(0x40000, PAGE_SIZE), 64)
            denied = pmp_check(csrs, result.paddr.zext(64), "r")
            assert prove(sym_implies(result.ok, ~denied)).proved
