"""PMP model tests, including the two U54 hardware quirks (§6.4)."""

from repro.riscv import QuirkConfig, counter_readable, napot_region, pmp_check
from repro.riscv.pmp import PMP_A_NAPOT, PMP_A_SHIFT, PMP_A_TOR, PMP_R, PMP_W, PMP_X
from repro.sym import bv_val, fresh_bv, prove, sym_implies

XLEN = 64


def make_csrs(**values):
    csrs = {name: bv_val(0, XLEN) for name in
            ["pmpcfg0"] + [f"pmpaddr{i}" for i in range(8)] + ["mcounteren"]}
    for k, v in values.items():
        csrs[k] = bv_val(v, XLEN) if isinstance(v, int) else v
    return csrs


def napot_cfg(perms, slot=0):
    return (perms | (PMP_A_NAPOT << PMP_A_SHIFT)) << (8 * slot)


class TestNapot:
    def test_napot_encoding(self):
        # 4KiB region at 0x8000: pmpaddr = (0x8000>>2) | (4096/8 - 1)
        assert napot_region(0x8000, 4096) == (0x8000 >> 2) | 511

    def test_inside_allowed_outside_denied(self):
        csrs = make_csrs(
            pmpcfg0=napot_cfg(PMP_R | PMP_W),
            pmpaddr0=napot_region(0x8000, 4096),
        )
        inside = pmp_check(csrs, bv_val(0x8100, XLEN), "r")
        outside = pmp_check(csrs, bv_val(0x9000, XLEN), "r")
        assert prove(inside).proved
        assert prove(~outside).proved

    def test_permission_bits_respected(self):
        csrs = make_csrs(
            pmpcfg0=napot_cfg(PMP_R),
            pmpaddr0=napot_region(0x8000, 4096),
        )
        assert prove(pmp_check(csrs, bv_val(0x8000, XLEN), "r")).proved
        assert prove(~pmp_check(csrs, bv_val(0x8000, XLEN), "w")).proved
        assert prove(~pmp_check(csrs, bv_val(0x8000, XLEN), "x")).proved

    def test_symbolic_address_bound(self):
        csrs = make_csrs(
            pmpcfg0=napot_cfg(PMP_R | PMP_W | PMP_X),
            pmpaddr0=napot_region(0x10000, 0x1000),
        )
        addr = fresh_bv("pmp_addr", XLEN)
        ok = pmp_check(csrs, addr, "r")
        assert prove(sym_implies((addr >= 0x10000) & (addr < 0x11000), ok)).proved
        assert prove(sym_implies(addr < 0x10000, ~ok)).proved


class TestTor:
    def test_tor_range(self):
        cfg = (PMP_R | (PMP_A_TOR << PMP_A_SHIFT)) << 8  # slot 1
        csrs = make_csrs(
            pmpcfg0=cfg,
            pmpaddr0=0x8000 >> 2,
            pmpaddr1=0xC000 >> 2,
        )
        assert prove(pmp_check(csrs, bv_val(0x9000, XLEN), "r")).proved
        assert prove(~pmp_check(csrs, bv_val(0x7000, XLEN), "r")).proved
        assert prove(~pmp_check(csrs, bv_val(0xC000, XLEN), "r")).proved


class TestPriority:
    def test_lowest_numbered_region_wins(self):
        # Region 0 denies writes to a subrange; region 1 allows the
        # enclosing range. Priority means the deny wins inside.
        csrs = make_csrs(
            pmpcfg0=napot_cfg(PMP_R, slot=0) | napot_cfg(PMP_R | PMP_W, slot=1),
            pmpaddr0=napot_region(0x8000, 4096),
            pmpaddr1=napot_region(0x0, 65536),
        )
        assert prove(~pmp_check(csrs, bv_val(0x8000, XLEN), "w")).proved
        assert prove(pmp_check(csrs, bv_val(0xC000, XLEN), "w")).proved


class TestU54Quirks:
    def test_superpage_quirk_divergence(self):
        """The buggy PMP check denies a superpage access the spec
        allows: region covers the access but not the full superpage."""
        csrs = make_csrs(
            pmpcfg0=napot_cfg(PMP_R),
            pmpaddr0=napot_region(0x200000, 4096),  # 4KiB inside a 2MiB superpage
        )
        addr = bv_val(0x200010, XLEN)
        correct = pmp_check(csrs, addr, "r", QuirkConfig(), page_size=2 * 1024 * 1024)
        buggy = pmp_check(
            csrs, addr, "r", QuirkConfig(u54_pmp_superpage=True), page_size=2 * 1024 * 1024
        )
        assert prove(correct).proved
        assert prove(~buggy).proved  # too strict: denies a legal access

    def test_superpage_quirk_harmless_for_4k_pages(self):
        """The paper's workaround: stop using superpages."""
        csrs = make_csrs(
            pmpcfg0=napot_cfg(PMP_R),
            pmpaddr0=napot_region(0x200000, 4096),
        )
        addr = fresh_bv("pmp_q", XLEN)
        correct = pmp_check(csrs, addr, "r", QuirkConfig(), page_size=4096)
        buggy = pmp_check(csrs, addr, "r", QuirkConfig(u54_pmp_superpage=True), page_size=4096)
        assert prove(correct == buggy if False else (correct & buggy) | (~correct & ~buggy)).proved

    def test_counter_leak_quirk(self):
        """Second U54 bug: performance-counter control ignored, so any
        privilege level can read counters (a covert channel)."""
        csrs = make_csrs(mcounteren=0)
        spec = counter_readable(csrs, 0, QuirkConfig())
        buggy = counter_readable(csrs, 0, QuirkConfig(u54_counter_leak=True))
        assert prove(~spec).proved  # architectural: gated off
        assert prove(buggy).proved  # hardware: readable anyway
