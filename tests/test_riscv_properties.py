"""Property-based differential tests for the RISC-V interpreter.

Each ALU instruction is executed through the lifted interpreter on
random concrete operands and compared against an independent pure-
Python reference semantics — the role riscv-tests plays in §6.4
("we wrote new interpreter tests and reused existing ones").
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import run_interpreter
from repro.core.memory import Memory
from repro.riscv import Assembler, CpuState, RiscvInterp
from repro.sym import bv_val, new_context

XLEN = 64
MASK = (1 << XLEN) - 1
u64 = st.integers(min_value=0, max_value=MASK)


def signed(v, w=XLEN):
    return v - (1 << w) if v >> (w - 1) else v


def ref_div(a, b):
    if b == 0:
        return MASK
    sa, sb = signed(a), signed(b)
    q = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        q = -q
    return q & MASK


def ref_rem(a, b):
    if b == 0:
        return a
    sa, sb = signed(a), signed(b)
    r = abs(sa) % abs(sb)
    return (-r if sa < 0 else r) & MASK


REFERENCE = {
    "add": lambda a, b: (a + b) & MASK,
    "sub": lambda a, b: (a - b) & MASK,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "sll": lambda a, b: (a << (b & 63)) & MASK,
    "srl": lambda a, b: a >> (b & 63),
    "sra": lambda a, b: (signed(a) >> (b & 63)) & MASK,
    "slt": lambda a, b: int(signed(a) < signed(b)),
    "sltu": lambda a, b: int(a < b),
    "mul": lambda a, b: (a * b) & MASK,
    "mulhu": lambda a, b: (a * b) >> 64,
    "mulh": lambda a, b: ((signed(a) * signed(b)) >> 64) & MASK,
    "div": ref_div,
    "divu": lambda a, b: MASK if b == 0 else a // b,
    "rem": ref_rem,
    "remu": lambda a, b: a if b == 0 else a % b,
    "addw": lambda a, b: (signed((a + b) & 0xFFFFFFFF, 32)) & MASK,
    "subw": lambda a, b: (signed((a - b) & 0xFFFFFFFF, 32)) & MASK,
    "sllw": lambda a, b: signed(((a & 0xFFFFFFFF) << (b & 31)) & 0xFFFFFFFF, 32) & MASK,
    "srlw": lambda a, b: signed(((a & 0xFFFFFFFF) >> (b & 31)) & 0xFFFFFFFF, 32) & MASK,
    "sraw": lambda a, b: (signed(a & 0xFFFFFFFF, 32) >> (b & 31)) & MASK,
}


def execute_one(op, a, b):
    asm = Assembler(base=0x1000, xlen=XLEN)
    asm.emit(op, rd=12, rs1=10, rs2=11)
    asm.mret()
    image = asm.assemble()
    with new_context():
        cpu = CpuState.symbolic(XLEN, 0x1000, Memory([], addr_width=XLEN))
        cpu.set_reg(10, bv_val(a, XLEN))
        cpu.set_reg(11, bv_val(b, XLEN))
        final = run_interpreter(RiscvInterp(image, xlen=XLEN), cpu).merged()
        return final.reg(12).as_int()


@given(a=u64, b=u64)
@settings(max_examples=25, deadline=None)
def test_alu_matches_reference(a, b):
    for op in ("add", "sub", "and", "or", "xor", "sll", "srl", "sra", "slt", "sltu"):
        got = execute_one(op, a, b)
        want = REFERENCE[op](a, b)
        assert got == want, f"{op}({a:#x}, {b:#x}) = {got:#x}, want {want:#x}"


@given(a=u64, b=u64)
@settings(max_examples=15, deadline=None)
def test_muldiv_matches_reference(a, b):
    for op in ("mul", "div", "divu", "rem", "remu"):
        got = execute_one(op, a, b)
        want = REFERENCE[op](a, b)
        assert got == want, f"{op}({a:#x}, {b:#x}) = {got:#x}, want {want:#x}"


@given(a=u64, b=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=8, deadline=None)
def test_mulh_matches_reference(a, b):
    for op in ("mulhu", "mulh"):
        got = execute_one(op, a, b)
        want = REFERENCE[op](a, b)
        assert got == want, f"{op}({a:#x}, {b:#x}) = {got:#x}, want {want:#x}"


@given(a=u64, b=u64)
@settings(max_examples=20, deadline=None)
def test_w_forms_match_reference(a, b):
    for op in ("addw", "subw", "sllw", "srlw", "sraw"):
        got = execute_one(op, a, b)
        want = REFERENCE[op](a, b)
        assert got == want, f"{op}({a:#x}, {b:#x}) = {got:#x}, want {want:#x}"
