"""Tests for the proof-obligation runner (repro.core.runner).

Three contracts the scheduler must uphold:

  * determinism — parallel runs produce exactly the sequential
    verdicts, in the same order, including the same "first failing
    obligation" (the reduction is input-order, not completion-order);
  * memoization — alpha-equivalent queries hit the persistent cache
    (the digest is over the canonicalized hash-consed DAG, so variable
    names don't matter), and a SAT hit replays the model under the
    current query's variable names;
  * invalidation — a changed query misses, and clearing the cache
    forces recomputation with identical verdicts.
"""

import pytest

from repro.bpf_jit import RV_BUGS, RvJit, check_rv_insn
from repro.bpf_jit.checker import _sweep_one, sweep
from repro.certikos import CertikosVerifier
from repro.core.runner import Obligation, obligations_from_context, reduce_results, run_obligations
from repro.smt import SolverCache, query_digest
from repro.sym import check_batch, fresh_bv, new_context, verify_vcs


def _algebra_obligations(prefix):
    """A mixed batch: provable identities plus one falsifiable claim."""
    x = fresh_bv(f"{prefix}.x", 32)
    y = fresh_bv(f"{prefix}.y", 32)
    # Identities the term-level simplifier cannot fold away, so every
    # one reaches the solver (and hence the cache).
    return [
        Obligation.from_terms("add-cancel", [((x + y) - y == x).term]),
        Obligation.from_terms("xor-cancel", [((x ^ y) ^ y == x).term]),
        Obligation.from_terms("bogus-shift", [(x << 1 == x).term]),
        Obligation.from_terms("absorb", [((x | y) & x == x).term]),
    ]


class TestDeterminism:
    def test_parallel_matches_sequential_on_algebra(self):
        seq, _ = run_obligations(_algebra_obligations("det.a"))
        par, stats = run_obligations(_algebra_obligations("det.b"), jobs=2)
        assert stats.jobs == 2
        assert [r.status for r in seq] == [r.status for r in par]
        assert [r.name for r in seq] == [r.name for r in par]
        assert reduce_results(seq).name == "bogus-shift"
        assert reduce_results(par).name == "bogus-shift"

    def test_parallel_matches_sequential_on_certikos_get_quota(self):
        verifier = CertikosVerifier(opt=1)
        sequential = verifier.prove_op("get_quota")
        verifier.jobs = 2
        parallel = verifier.prove_op("get_quota")
        assert sequential.proved and parallel.proved
        assert parallel.stats["obligations"] > 1

    @pytest.mark.parametrize("bug", RV_BUGS[:3], ids=lambda b: b.id)
    def test_parallel_matches_sequential_on_jit_bugs(self, bug):
        # Each cataloged bug's witness instruction must produce a
        # counterexample whether the sweep runs in-process or across
        # worker processes, and clean instructions must stay clean.
        jit = RvJit(bugs={bug.id})
        battery = [bug.witness]
        seq = sweep(check_rv_insn, jit, battery, jobs=1)
        par = sweep(check_rv_insn, jit, battery, jobs=2)
        assert [r.ok for r in seq] == [r.ok for r in par]
        assert not seq[0].ok
        assert par[0].counterexample is not None

    def test_sweep_worker_is_picklable_entry(self):
        bug = RV_BUGS[0]
        result = _sweep_one((check_rv_insn, RvJit(bugs={bug.id}), bug.witness))
        assert not result.ok

    def test_verify_vcs_runner_path_matches_batch_path(self):
        def build(tag):
            ctx = new_context().__enter__()
            a = fresh_bv(f"vvr.{tag}.a", 16)
            b = fresh_bv(f"vvr.{tag}.b", 16)
            ctx.assert_prop((a + b) - b == a, "add-cancel")
            ctx.assert_prop((a ^ b) ^ b == a, "xor-cancel")
            return ctx

        plain = verify_vcs(build("p"))
        runner = verify_vcs(build("r"), jobs=2)
        assert plain.proved and runner.proved
        assert runner.stats["obligations"] == 2


class TestCache:
    def test_alpha_equivalent_queries_hit(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold, cold_stats = run_obligations(
            _algebra_obligations("alpha.one"), cache_dir=cache_dir
        )
        # Same queries over *differently named* variables: every
        # obligation canonicalizes to the same digest and hits.
        warm, warm_stats = run_obligations(
            _algebra_obligations("alpha.two"), cache_dir=cache_dir
        )
        assert warm_stats.cache_hits == warm_stats.cache_queries == 4
        assert warm_stats.cache_hit_rate == 1.0
        assert [r.status for r in cold] == [r.status for r in warm]

    def test_sat_hit_replays_model_under_new_names(self, tmp_path):
        cache = SolverCache(str(tmp_path / "cache"))
        x = fresh_bv("replay.x", 32)
        first = check_batch(
            [("x is 7", x != 7, [])], cache_dir=cache.path
        )[0]
        assert not first.proved
        y = fresh_bv("replay.y", 32)
        second = check_batch(
            [("y is 7", y != 7, [])], cache_dir=cache.path
        )[0]
        assert not second.proved
        # The cached model comes back under the *current* variable
        # names, not the names the original query was stored under.
        first_items = dict(first.counterexample.items())
        second_items = dict(second.counterexample.items())
        assert set(first_items) != set(second_items)
        assert sorted(first_items.values()) == sorted(second_items.values())
        assert y is not x

    def test_digest_is_name_blind_but_structure_sensitive(self):
        x = fresh_bv("dig.x", 32)
        y = fresh_bv("dig.y", 32)
        assert query_digest([(x + 1 == 2).term]) == query_digest([(y + 1 == 2).term])
        assert query_digest([(x + 1 == 2).term]) != query_digest([(x + 1 == 3).term])

    def test_unknown_verdicts_are_not_cached(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        x = fresh_bv("unk.x", 64)
        y = fresh_bv("unk.y", 64)
        hard = [Obligation.from_terms("hard-mul", [(x * y == y * x).term])]
        first, _ = run_obligations(hard, cache_dir=cache_dir, max_conflicts=1)
        if first[0].status != "unknown":
            pytest.skip("budget large enough to decide the query")
        second, stats = run_obligations(hard, cache_dir=cache_dir, max_conflicts=1)
        assert second[0].status == "unknown"
        assert stats.cache_hits == 0


class TestInvalidation:
    def test_changed_query_misses(self, tmp_path):
        cache = SolverCache(str(tmp_path / "cache"))
        x = fresh_bv("inv.x", 32)
        run_obligations(
            [Obligation.from_terms("v1", [(x + 1 == 1 + x).term])], cache_dir=cache.path
        )
        _, stats = run_obligations(
            [Obligation.from_terms("v2", [(x + 2 == 2 + x).term])], cache_dir=cache.path
        )
        assert stats.cache_hits == 0

    def test_clear_forces_recompute_with_same_verdicts(self, tmp_path):
        cache = SolverCache(str(tmp_path / "cache"))
        batch = _algebra_obligations("clr")
        first, _ = run_obligations(batch, cache_dir=cache.path)
        cache.clear()
        second, stats = run_obligations(batch, cache_dir=cache.path)
        assert stats.cache_hits == 0
        assert [r.status for r in first] == [r.status for r in second]

    def test_obligations_from_context_carry_vc_metadata(self):
        with new_context() as ctx:
            a = fresh_bv("meta.a", 8)
            b = fresh_bv("meta.b", 8)
            ctx.assert_prop((a + b) - b == a, "add-cancel")
            obs = obligations_from_context(ctx)
        assert len(obs) == 1
        assert obs[0].info["kind"] == "assert"
        assert "add-cancel" in obs[0].name
