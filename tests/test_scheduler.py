"""The work-stealing obligation scheduler (``repro.core.scheduler``).

The contract under test is the one CI relies on: scheduling is an
implementation detail.  However obligations are dealt, stolen, timed
out, and retried, the verdicts — and the first failing obligation —
must be exactly the sequential baseline's.
"""

import threading
import time

from repro.core.runner import Obligation, reduce_results, run_obligations
from repro.core.scheduler import ObligationScheduler, get_scheduler, in_worker, peek_scheduler
from repro.smt import bv_sort, fresh_var, mk_bv, mk_bvadd, mk_bvand, mk_bvmul, mk_bvxor, mk_eq, mk_ule


def _obligation_set():
    """A mixed batch: provable goals that reach the SAT core, plus two
    known failures (indices 3 and 6) so first-failure is exercised."""
    obligations = []
    for i in range(8):
        x = fresh_var("x", bv_sort(8))
        y = fresh_var("y", bv_sort(8))
        if i in (3, 6):
            # not valid: the negation (x != 5) is satisfiable.
            goal = mk_eq(x, mk_bv(5, 8))
        else:
            # valid, but not constant-folded at construction: the
            # masked value is bounded by the mask, and xor cancels.
            goal = mk_eq(
                mk_bvxor(mk_bvxor(x, y), y),
                mk_bvand(x, mk_bv(0xFF, 8)),
            )
            if i % 2:
                goal = mk_ule(mk_bvand(x, mk_bv(0x0F, 8)), mk_bv(0x0F, 8))
        obligations.append(Obligation.from_terms(f"ob{i}", [goal]))
    return obligations


class TestDeterminism:
    def test_verdicts_stable_across_steal_seeds(self):
        """Ten schedulers with different steal seeds (hence different
        work-stealing interleavings) must all reproduce the sequential
        verdicts in order, including the same first failure."""
        obligations = _obligation_set()
        seq_results, _ = run_obligations(obligations, jobs=1)
        seq_verdicts = [r.status for r in seq_results]
        assert seq_verdicts.count("failed") == 2
        seq_first = reduce_results(seq_results)
        assert seq_first is not None and seq_first.name == "ob3"

        for seed in range(10):
            sched = ObligationScheduler(workers=2, steal_seed=seed)
            try:
                results, stats = sched.run(obligations, jobs_hint=2)
            finally:
                sched.shutdown()
            assert [r.status for r in results] == seq_verdicts, f"seed {seed}"
            assert [r.name for r in results] == [ob.name for ob in obligations]
            first = reduce_results(results)
            assert first is not None and first.name == "ob3", f"seed {seed}"
            assert stats.obligations == len(obligations)

    def test_run_obligations_routes_to_shared_pool(self):
        """jobs>1 uses the process-wide scheduler and reports
        scheduler telemetry in the stats."""
        obligations = _obligation_set()
        results, stats = run_obligations(obligations, jobs=2)
        assert [r.status for r in results] == [
            r.status for r in run_obligations(obligations, jobs=1)[0]
        ]
        assert stats.jobs == 2
        assert stats.as_dict()["pool_workers"] >= 2
        # The pool persists: a second call reuses it (no respawn).
        pool = get_scheduler()
        size_before = pool.pool_size
        run_obligations(obligations, jobs=2)
        assert pool.pool_size == size_before

    def test_not_in_worker_in_parent(self):
        assert not in_worker()


class TestTimeouts:
    def test_timeout_retries_then_unknown(self):
        """A diverging query is interrupted mid-solve, retried once,
        and reduced as unknown — never a wrong verdict."""
        x = fresh_var("x", bv_sort(32))
        hard = []
        for offset in (3, 5):
            goal = mk_eq(mk_bvmul(x, x), mk_bvadd(x, mk_bv(offset, 32)))
            # The negation (x*x != x+offset) needs a real SAT search.
            hard.append(Obligation.from_terms(f"hard{offset}", [goal]))

        sched = ObligationScheduler(workers=2)
        try:
            results, stats = sched.run(hard, timeout_s=0.001, retries=1, jobs_hint=2)
        finally:
            sched.shutdown()
        assert all(r.status == "unknown" for r in results)
        assert all(r.stats.get("timed_out") for r in results)
        assert stats.retries == len(hard)  # one bounded retry each
        assert stats.timeouts == 2 * len(hard)  # initial attempt + retry

    def test_no_timeout_when_budget_sufficient(self):
        x = fresh_var("x", bv_sort(8))
        goal = mk_ule(mk_bvand(x, mk_bv(0x0F, 8)), mk_bv(0x0F, 8))
        ob = Obligation.from_terms("easy", [goal])
        results, stats = run_obligations([ob, ob], jobs=2, timeout_s=30.0)
        assert all(r.status == "proved" for r in results)
        assert stats.as_dict().get("timeouts", 0) == 0


def _slow_obligation(name: str, bits: int = 12) -> Obligation:
    """The ring identity (x+1)(y+1) == xy+x+y+1: survives construction-
    time rewriting and is slow enough at 12 bits that it only ends via
    its per-obligation timeout — a reliably in-flight task."""
    x = fresh_var("sx", bv_sort(bits))
    y = fresh_var("sy", bv_sort(bits))
    one = mk_bv(1, bits)
    lhs = mk_bvmul(mk_bvadd(x, one), mk_bvadd(y, one))
    rhs = mk_bvadd(mk_bvadd(mk_bvmul(x, y), mk_bvadd(x, y)), one)
    return Obligation.from_terms(name, [mk_eq(lhs, rhs)])


class TestCancellation:
    def test_cancel_drops_queued_finishes_inflight(self):
        """With one worker, task 0 is in flight and the rest are queued:
        cancel() finalizes the queued tasks as ``cancelled`` instantly,
        and the in-flight task ends at its timeout without a retry."""
        obligations = [_slow_obligation(f"slow{i}") for i in range(6)]
        sched = ObligationScheduler(workers=1)
        try:
            ticket = sched.submit_obligations(obligations, timeout_s=1.0)
            dropped = sched.cancel(ticket)
            assert dropped == len(obligations) - 1  # all but the in-flight one
            assert ticket.cancelled

            # The queued tasks are already finalized, before wait().
            for result in ticket.results[1:]:
                assert result.status == "unknown"
                assert result.stats.get("cancelled") is True

            results = ticket.wait(timeout=30.0)
            progress = ticket.progress()
            assert progress["done"] == len(obligations)
            assert progress["pending"] == 0
            # The in-flight obligation reported its timeout, un-retried.
            assert results[0].status == "unknown"
            assert results[0].stats.get("timed_out")
            assert progress["retries"] == 0

            # Idempotent: a second cancel finds nothing left to drop.
            assert sched.cancel(ticket) == 0
        finally:
            sched.shutdown()

    def test_cancel_empty_after_completion(self):
        """Cancelling a ticket whose work already finished drops nothing
        and does not disturb the recorded results."""
        obligations = _obligation_set()
        sched = ObligationScheduler(workers=2)
        try:
            ticket = sched.submit_obligations(obligations)
            results = ticket.wait(timeout=60.0)
            statuses = [r.status for r in results]
            assert sched.cancel(ticket) == 0
            assert [r.status for r in ticket.results] == statuses
        finally:
            sched.shutdown()


class TestStreaming:
    def test_on_result_streams_every_verdict(self):
        """on_result fires exactly once per obligation, with the index
        and result that land in the ticket's reduction slot."""
        obligations = _obligation_set()
        seen = []
        lock = threading.Lock()

        def on_result(index, result):
            with lock:
                seen.append((index, result.status))

        sched = ObligationScheduler(workers=2)
        try:
            ticket = sched.submit_obligations(
                obligations, job="job-under-test", on_result=on_result
            )
            results = ticket.wait(timeout=60.0)
        finally:
            sched.shutdown()
        assert ticket.job == "job-under-test"
        assert sorted(index for index, _ in seen) == list(range(len(obligations)))
        assert dict(seen) == {i: r.status for i, r in enumerate(results)}

    def test_progress_reaches_total(self):
        obligations = _obligation_set()
        sched = ObligationScheduler(workers=2)
        try:
            ticket = sched.submit_obligations(obligations)
            deadline = time.monotonic() + 60.0
            while ticket.progress()["pending"] and time.monotonic() < deadline:
                time.sleep(0.01)
            progress = ticket.progress()
        finally:
            sched.shutdown()
        assert progress["total"] == len(obligations)
        assert progress["done"] == len(obligations)
        assert not progress["cancelled"]


class TestTelemetry:
    def test_peek_does_not_create_and_telemetry_keys(self):
        """peek_scheduler only reveals a live shared pool; telemetry
        carries the counters /metrics publishes."""
        sched = get_scheduler()
        assert peek_scheduler() is sched
        telemetry = sched.telemetry()
        assert telemetry["pool_workers"] == sched.pool_size
        for key in ("queued", "inflight", "steals", "retries", "timeouts",
                    "worker_restarts", "max_queue_depth"):
            assert isinstance(telemetry[key], int), key
