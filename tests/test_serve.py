"""The verification daemon (``repro.serve``).

Covers the serving contracts the CI load gate leans on: a submitted
batch reproduces the sequential runner's verdicts exactly, verdicts
stream incrementally with ``since`` cursors, concurrent clients share
one warm verdict store, a daemon restart marks live jobs
``interrupted`` instead of losing them, and cancellation drops queued
work while keeping every record accounted for.
"""

import json
import threading
import time

import pytest

from repro.core.runner import Obligation, ObligationResult, run_obligations
from repro.serve import GRIDS, ServeClient, ServeError, VerificationServer, run_grid
from repro.serve.jobs import RUNNING, JobRegistry
from repro.smt import bv_sort, fresh_var, mk_bv, mk_bvadd, mk_bvand, mk_bvmul, mk_bvxor, mk_eq, mk_ule


def _batch():
    """Six obligations that reach the SAT core, with known failures at
    indices 2 and 4 (same shape as the scheduler suite's set)."""
    obligations = []
    for i in range(6):
        x = fresh_var("x", bv_sort(8))
        y = fresh_var("y", bv_sort(8))
        if i in (2, 4):
            goal = mk_eq(x, mk_bv(5, 8))  # not valid
        else:
            goal = mk_eq(
                mk_bvxor(mk_bvxor(x, y), y),
                mk_bvand(x, mk_bv(0xFF, 8)),
            )
            if i % 2:
                goal = mk_ule(mk_bvand(x, mk_bv(0x0F, 8)), mk_bv(0x0F, 8))
        obligations.append(Obligation.from_terms(f"ob{i}", [goal]))
    return obligations


def _slow_obligation(name: str, bits: int = 12) -> Obligation:
    """The ring identity (x+1)(y+1) == xy+x+y+1: not simplified away at
    construction, and slow enough at 12 bits that it only ends via its
    per-obligation timeout — the in-flight piece of the cancel tests."""
    x = fresh_var("sx", bv_sort(bits))
    y = fresh_var("sy", bv_sort(bits))
    one = mk_bv(1, bits)
    lhs = mk_bvmul(mk_bvadd(x, one), mk_bvadd(y, one))
    rhs = mk_bvadd(mk_bvadd(mk_bvmul(x, y), mk_bvadd(x, y)), one)
    return Obligation.from_terms(name, [mk_eq(lhs, rhs)])


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve")
    srv = VerificationServer(store_dir=str(root / "store"), trace=False).start()
    yield srv
    srv.close()


@pytest.fixture()
def client(server):
    return ServeClient(server.url, timeout_s=120.0)


class TestObligationJobs:
    def test_batch_matches_sequential_runner(self, client):
        """Submit/poll round-trip: the daemon's records, reduced in
        index order, equal a sequential ``run_obligations`` verbatim."""
        obligations = _batch()
        sequential = [r.status for r in run_obligations(obligations, jobs=1)[0]]
        assert sequential.count("failed") == 2

        job = client.submit_obligations(obligations, jobs=2)
        assert job["id"] and job["location"] == f"/jobs/{job['id']}"
        final = client.wait(job["id"], timeout_s=120)
        assert final["state"] == "done"
        assert final["progress"] == {"total": len(obligations), "done": len(obligations)}

        records = client.results(job["id"])
        assert [r["status"] for r in records] == sequential
        assert [r["name"] for r in records] == [ob.name for ob in obligations]

    def test_verdicts_stream_and_page_with_since(self, client):
        obligations = _batch()
        job_id = client.submit_obligations(obligations, jobs=2)["id"]

        streamed = list(client.stream(job_id))
        assert sorted(r["index"] for r in streamed) == list(range(len(obligations)))

        # Cursor pagination: any suffix re-reads exactly the tail.
        page = client.verdicts(job_id, since=4)
        assert page["since"] == 4
        assert page["next"] == len(obligations)
        assert len(page["verdicts"]) == len(obligations) - 4
        full = client.verdicts(job_id)["verdicts"]
        assert full[4:] == page["verdicts"]

    def test_concurrent_clients_share_warm_cache(self, server, client):
        """Two clients resubmitting an already-proved batch must both be
        answered entirely from the shared verdict store."""
        docs = [ob.to_json() for ob in _batch()]
        cold = client.wait(client.submit_obligations(docs)["id"], timeout_s=120)
        assert cold["state"] == "done"
        assert cold["stats"]["cache_queries"] == len(docs)

        finals = []
        errors = []

        def resubmit():
            try:
                worker = ServeClient(server.url, timeout_s=120.0)
                finals.append(worker.wait(worker.submit_obligations(docs)["id"], timeout_s=120))
            except Exception as exc:  # noqa: BLE001 - surfaced via errors
                errors.append(exc)

        threads = [threading.Thread(target=resubmit) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert len(finals) == 2
        for final in finals:
            assert final["state"] == "done"
            assert final["stats"]["cache_hits"] == len(docs)

    def test_cancel_drops_queued_work(self, server, client):
        """Cancel mid-job: queued obligations are dropped immediately,
        in-flight ones end at their timeout, nothing is lost."""
        slow = [_slow_obligation(f"slow{i}") for i in range(6)]
        job_id = client.submit_obligations(slow, jobs=2, timeout_s=1.0)["id"]

        # Wait for the runner thread to hand the batch to the scheduler
        # (the ticket is what cancel reaches through).
        job = server.registry.get(job_id)
        deadline = time.monotonic() + 30
        while job.ticket is None and time.monotonic() < deadline:
            time.sleep(0.01)
        assert job.ticket is not None

        reply = client.cancel(job_id)
        assert reply["cancelling"] is True

        final = client.wait(job_id, timeout_s=60)
        assert final["state"] == "cancelled"
        records = client.results(job_id)
        assert len(records) == len(slow)
        assert all(r["status"] == "unknown" for r in records)
        assert any(r["stats"].get("cancelled") for r in records)

        # Cancelling a terminal job is refused.
        with pytest.raises(ServeError) as excinfo:
            client.cancel(job_id)
        assert excinfo.value.code == 409


class TestGridJobs:
    def test_grid_job_matches_sequential_reference(self, server, client):
        """A daemon grid job's verdict map equals a plain in-process
        sequential run — the determinism contract the load gate diffs."""
        expected, _ = run_grid("fig11-quick", opt=1, jobs=1, cache_dir=None)
        job_id = client.submit_grid("fig11-quick", opt=1)["id"]
        final = client.wait(job_id, timeout_s=300)
        assert final["state"] == "done"
        assert final["progress"]["total"] == len(GRIDS["fig11-quick"])
        assert client.verdict_map(job_id) == expected
        assert final["stats"]["verdict_map"] == expected


class TestRestartContract:
    def test_restart_marks_live_jobs_interrupted(self, tmp_path):
        """A job that was running when the daemon died is reported
        ``interrupted`` by the next daemon, verdicts-so-far intact."""
        spool = str(tmp_path / "spool")
        registry = JobRegistry(spool)
        job = registry.create("grid", {"grid": "fig11-quick"})
        with job.cond:
            job.state = RUNNING
        partial = {"index": 0, "name": "certikos.get_quota", "status": "proved", "proved": True}
        job.add_verdict(partial)
        registry.persist(job)

        srv = VerificationServer(
            store_dir=str(tmp_path / "store"), spool_dir=spool, trace=False
        ).start()
        try:
            reborn = ServeClient(srv.url)
            assert reborn.healthz()["recovered_jobs"] == [job.id]
            snapshot = reborn.job(job.id)
            assert snapshot["state"] == "interrupted"
            assert "restarted" in snapshot["error"]
            page = reborn.verdicts(job.id)
            assert page["state"] == "interrupted"
            assert page["verdicts"] == [partial]
        finally:
            srv.close()


class TestHttpSurface:
    def test_healthz_and_metrics(self, client):
        health = client.healthz()
        assert health["ok"] is True
        assert all(isinstance(n, int) for n in health["jobs"].values())
        metrics = client.metrics()
        assert metrics["store"]["entries"] >= 0
        assert set(metrics["jobs"]) == set(health["jobs"])

    def test_bad_requests(self, client):
        cases = [
            (400, lambda: client._request("POST", "/jobs", {"kind": "bogus"})),
            (400, lambda: client.submit_grid("no-such-grid")),
            (400, lambda: client.submit_grid("fig11-quick", opt=7)),
            (400, lambda: client.submit_obligations([])),
            (400, lambda: client.submit_obligations([{"name": "", "num_goals": 1}])),
            (400, lambda: client.submit_obligations(_batch(), jobs=-1)),
            (400, lambda: client.submit_obligations(_batch(), timeout_s=-2)),
            (400, lambda: client.submit_obligations(_batch(), max_conflicts=0)),
            (404, lambda: client.job("nope")),
            (404, lambda: client.cancel("nope")),
            (404, lambda: client._request("GET", "/nonsense")),
        ]
        for code, call in cases:
            with pytest.raises(ServeError) as excinfo:
                call()
            assert excinfo.value.code == code, call

        job_id = client.submit_obligations(_batch())["id"]
        client.wait(job_id, timeout_s=120)
        with pytest.raises(ServeError) as excinfo:
            client._request("GET", f"/jobs/{job_id}/verdicts?since=-1")
        assert excinfo.value.code == 400


class TestWireFormat:
    def test_obligation_round_trip(self):
        original = _batch()[0]
        clone = Obligation.from_json(json.loads(json.dumps(original.to_json())))
        assert clone.name == original.name
        assert clone.num_goals == original.num_goals
        assert clone.payload == original.payload
        # The clone is verifiable, with the original's verdict.
        assert run_obligations([clone], jobs=1)[0][0].status == "proved"

    def test_obligation_validation(self):
        good = _batch()[0].to_json()
        bad_docs = [
            42,
            {**good, "name": ""},
            {**good, "num_goals": 0},
            {**good, "num_goals": True},
            {**good, "num_goals": 10_000},
            {**good, "payload": None},
            {**good, "payload": {"nodes": []}},
            {**good, "info": "not-a-dict"},
        ]
        for doc in bad_docs:
            with pytest.raises(ValueError):
                Obligation.from_json(doc)

    def test_result_wire_format_drops_non_scalars(self):
        result = ObligationResult(
            "ob0", "proved", stats={"cached": True, "envelope": object()}
        )
        doc = result.to_json()
        assert doc["stats"] == {"cached": True}
        back = ObligationResult.from_json(doc)
        assert back.name == "ob0" and back.status == "proved"
        with pytest.raises(ValueError):
            ObligationResult.from_json({"name": "ob0", "status": "banana"})


class TestCertificateEndpoints:
    def test_certificates_per_verdict(self, server, client):
        """Every cache-backed verdict exposes its stored proof
        certificate, bound to the record's query digest."""
        job_id = client.submit_obligations(_batch(), jobs=2)["id"]
        assert client.wait(job_id, timeout_s=120)["state"] == "done"

        doc = client._request("GET", f"/jobs/{job_id}/certificates")
        rows = doc["certificates"]
        assert doc["count"] == len(rows) == 6
        certified = [row for row in rows if row["certificate"] is not None]
        assert certified, "no verdict carried a certificate"
        for row in certified:
            assert row["certificate"]["digest"] == row["digest"]
            assert row["certificate"]["kind"] in ("drat", "model")

    def test_verdicts_certs_flag_inlines_certificates(self, server, client):
        job_id = client.submit_obligations(_batch(), jobs=2)["id"]
        assert client.wait(job_id, timeout_s=120)["state"] == "done"

        plain = client.verdicts(job_id)["verdicts"]
        assert all("certificate" not in r for r in plain)
        with_certs = client._request("GET", f"/jobs/{job_id}/verdicts?certs=1")["verdicts"]
        assert len(with_certs) == len(plain)
        assert any(r["certificate"] is not None for r in with_certs)
        for record in with_certs:
            cert = record["certificate"]
            if cert is not None:
                assert cert["digest"] == record["stats"]["digest"]

    def test_grid_job_certificates_are_null_rows(self, server, client):
        """Grid-job records aggregate many queries and carry no digest;
        the endpoint answers with null certificates, not an error."""
        job = client._request(
            "POST", "/jobs", {"kind": "grid", "grid": "fig11-quick", "jobs": 2}
        )
        assert client.wait(job["id"], timeout_s=300)["state"] == "done"
        doc = client._request("GET", f"/jobs/{job['id']}/certificates")
        assert doc["count"] == len(GRIDS["fig11-quick"])
        assert all(row["certificate"] is None for row in doc["certificates"])
        assert all(row["digest"] is None for row in doc["certificates"])
