"""Differential tests: bit-blasted semantics vs. the reference evaluator.

Every bitvector operation is checked two ways:
  1. hypothesis property tests comparing ``eval_term`` against Python
     integer semantics, and
  2. solver round-trips: assert ``op(a, b) == var`` with concrete a, b
     and read the var back out of the model.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import (
    bv_sort,
    check_sat,
    eval_term,
    mk_bv,
    mk_bvadd,
    mk_bvand,
    mk_bvashr,
    mk_bvlshr,
    mk_bvmul,
    mk_bvneg,
    mk_bvnot,
    mk_bvor,
    mk_bvsdiv,
    mk_bvshl,
    mk_bvsrem,
    mk_bvsub,
    mk_bvudiv,
    mk_bvurem,
    mk_bvxor,
    mk_concat,
    mk_eq,
    mk_extract,
    mk_not,
    mk_sext,
    mk_sle,
    mk_slt,
    mk_ule,
    mk_ult,
    mk_var,
    mk_zext,
    to_signed,
    to_unsigned,
)

W = 8
MASK = (1 << W) - 1
bytes_ = st.integers(min_value=0, max_value=MASK)

VA = mk_var("bb_a", bv_sort(W))
VB = mk_var("bb_b", bv_sort(W))

BINOPS = {
    "bvadd": (mk_bvadd, lambda a, b: (a + b) & MASK),
    "bvsub": (mk_bvsub, lambda a, b: (a - b) & MASK),
    "bvmul": (mk_bvmul, lambda a, b: (a * b) & MASK),
    "bvand": (mk_bvand, lambda a, b: a & b),
    "bvor": (mk_bvor, lambda a, b: a | b),
    "bvxor": (mk_bvxor, lambda a, b: a ^ b),
    "bvudiv": (mk_bvudiv, lambda a, b: MASK if b == 0 else a // b),
    "bvurem": (mk_bvurem, lambda a, b: a if b == 0 else a % b),
    "bvshl": (mk_bvshl, lambda a, b: (a << b) & MASK if b < W else 0),
    "bvlshr": (mk_bvlshr, lambda a, b: a >> b if b < W else 0),
    "bvashr": (mk_bvashr, lambda a, b: to_unsigned(to_signed(a, W) >> min(b, W - 1), W)),
}

PREDOPS = {
    "ult": (mk_ult, lambda a, b: a < b),
    "ule": (mk_ule, lambda a, b: a <= b),
    "slt": (mk_slt, lambda a, b: to_signed(a, W) < to_signed(b, W)),
    "sle": (mk_sle, lambda a, b: to_signed(a, W) <= to_signed(b, W)),
}


def _sdiv_ref(a, b):
    sa, sb = to_signed(a, W), to_signed(b, W)
    if sb == 0:
        return MASK if sa >= 0 else 1
    q = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        q = -q
    return to_unsigned(q, W)


def _srem_ref(a, b):
    sa, sb = to_signed(a, W), to_signed(b, W)
    if sb == 0:
        return a
    r = abs(sa) % abs(sb)
    return to_unsigned(-r if sa < 0 else r, W)


BINOPS["bvsdiv"] = (mk_bvsdiv, _sdiv_ref)
BINOPS["bvsrem"] = (mk_bvsrem, _srem_ref)


@given(a=bytes_, b=bytes_)
@settings(max_examples=60, deadline=None)
def test_evaluator_matches_reference(a, b):
    env = {"bb_a": a, "bb_b": b}
    for name, (mk, ref) in BINOPS.items():
        got = eval_term(mk(VA, VB), env)
        assert got == ref(a, b), f"{name}({a:#x}, {b:#x}) = {got:#x}, want {ref(a, b):#x}"
    for name, (mk, ref) in PREDOPS.items():
        assert eval_term(mk(VA, VB), env) == ref(a, b), name


@given(a=bytes_, b=bytes_)
@settings(max_examples=12, deadline=None)
def test_bitblast_matches_reference(a, b):
    """Solve op(a, b) == out with concrete inputs; read out of the model."""
    out = mk_var("bb_out", bv_sort(W))
    ta, tb = mk_bv(a, W), mk_bv(b, W)
    for name, (mk, ref) in BINOPS.items():
        # Force a non-trivial circuit by keeping one symbolic operand
        # pinned with an equality rather than folding to a constant.
        constraint = mk_eq(mk(VA, VB), out)
        result = check_sat(constraint, mk_eq(VA, ta), mk_eq(VB, tb))
        assert result.is_sat, name
        assert result.model["bb_out"] == ref(a, b), (
            f"{name}({a:#x}, {b:#x}): model {result.model['bb_out']:#x}, want {ref(a, b):#x}"
        )


@given(a=bytes_, b=bytes_)
@settings(max_examples=12, deadline=None)
def test_bitblast_predicates(a, b):
    ta, tb = mk_bv(a, W), mk_bv(b, W)
    for name, (mk, ref) in PREDOPS.items():
        pred = mk(VA, VB)
        want = ref(a, b)
        positive = check_sat(pred if want else mk_not(pred), mk_eq(VA, ta), mk_eq(VB, tb))
        negative = check_sat(mk_not(pred) if want else pred, mk_eq(VA, ta), mk_eq(VB, tb))
        assert positive.is_sat, name
        assert negative.is_unsat, name


@given(a=bytes_)
@settings(max_examples=25, deadline=None)
def test_unary_and_structural(a):
    env = {"bb_a": a}
    assert eval_term(mk_bvnot(VA), env) == a ^ MASK
    assert eval_term(mk_bvneg(VA), env) == (-a) & MASK
    assert eval_term(mk_zext(VA, 8), env) == a
    assert eval_term(mk_sext(VA, 8), env) == to_unsigned(to_signed(a, W), 16)
    assert eval_term(mk_extract(3, 0, VA), env) == a & 0xF
    assert eval_term(mk_extract(7, 4, VA), env) == a >> 4
    assert eval_term(mk_concat(VA, VA), env) == (a << 8) | a


def test_bitblast_sext_via_solver():
    out = mk_var("bb_sext_out", bv_sort(16))
    r = check_sat(mk_eq(out, mk_sext(VA, 8)), mk_eq(VA, mk_bv(0x80, 8)))
    assert r.is_sat
    assert r.model["bb_sext_out"] == 0xFF80


def test_bitblast_shift_symbolic_amount():
    """Shift by a symbolic amount covers the barrel shifter stages."""
    amt = mk_var("bb_amt", bv_sort(W))
    t = mk_bvshl(mk_bv(1, W), amt)
    r = check_sat(mk_eq(t, mk_bv(0x20, W)))
    assert r.is_sat and r.model["bb_amt"] == 5
    # No amount produces 3 from shifting 1.
    assert check_sat(mk_eq(t, mk_bv(3, W))).is_unsat


def test_bitblast_overshift_semantics():
    amt = mk_var("bb_amt2", bv_sort(W))
    t = mk_bvshl(VA, amt)
    r = check_sat(mk_eq(amt, mk_bv(200, W)), mk_not(mk_eq(t, mk_bv(0, W))))
    assert r.is_unsat  # overshift always yields zero


def test_bitblast_width_3_nonpow2_overshift():
    """Width 3 exercises the amt >= w comparator in the shifter."""
    v = mk_var("bb_w3", bv_sort(3))
    amt = mk_var("bb_w3amt", bv_sort(3))
    t = mk_bvlshr(v, amt)
    # amount 3..7 must give zero
    r = check_sat(mk_ule(mk_bv(3, 3), amt), mk_not(mk_eq(t, mk_bv(0, 3))))
    assert r.is_unsat


def test_division_by_zero_solver_semantics():
    b = mk_var("bb_divzero", bv_sort(W))
    q = mk_bvudiv(VA, b)
    r = check_sat(mk_eq(b, mk_bv(0, W)), mk_not(mk_eq(q, mk_bv(MASK, W))))
    assert r.is_unsat


def test_uf_consistency():
    from repro.smt import mk_apply

    f_a = mk_apply("bb_f", bv_sort(W), [VA])
    f_b = mk_apply("bb_f", bv_sort(W), [VB])
    # a == b but f(a) != f(b) must be unsat.
    r = check_sat(mk_eq(VA, VB), mk_not(mk_eq(f_a, f_b)))
    assert r.is_unsat
    # f(a) != f(b) alone is satisfiable.
    assert check_sat(mk_not(mk_eq(f_a, f_b))).is_sat
