"""Unit and property tests for the CDCL SAT core."""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt.sat import SAT, SatSolver, UNSAT, luby


def brute_force(num_vars: int, clauses: list[list[int]]) -> bool:
    for bits in itertools.product([False, True], repeat=num_vars):
        ok = True
        for clause in clauses:
            if not any(bits[abs(l) - 1] == (l > 0) for l in clause):
                ok = False
                break
        if ok:
            return True
    return False


def check_model(solver: SatSolver, clauses: list[list[int]]) -> None:
    for clause in clauses:
        assert any(solver.value(l) for l in clause), f"clause {clause} falsified"


class TestBasics:
    def test_unit_propagation(self):
        s = SatSolver()
        a, b, c = s.new_var(), s.new_var(), s.new_var()
        s.add_clause([a, b])
        s.add_clause([-a, c])
        s.add_clause([-c])
        assert s.solve() == SAT
        assert s.value(c) is False
        assert s.value(a) is False
        assert s.value(b) is True

    def test_empty_clause_unsat(self):
        s = SatSolver()
        a = s.new_var()
        s.add_clause([a])
        assert not s.add_clause([-a])
        assert s.solve() == UNSAT

    def test_trivial_sat(self):
        s = SatSolver()
        s.new_var()
        assert s.solve() == SAT

    def test_tautology_dropped(self):
        s = SatSolver()
        a = s.new_var()
        s.add_clause([a, -a])
        assert s.solve() == SAT

    def test_duplicate_literals(self):
        s = SatSolver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, a, b])
        s.add_clause([-a])
        assert s.solve() == SAT
        assert s.value(b) is True

    def test_pigeonhole_3_2_unsat(self):
        # 3 pigeons, 2 holes: classic small UNSAT instance needing search.
        s = SatSolver()
        p = {(i, j): s.new_var() for i in range(3) for j in range(2)}
        for i in range(3):
            s.add_clause([p[(i, 0)], p[(i, 1)]])
        for j in range(2):
            for i1 in range(3):
                for i2 in range(i1 + 1, 3):
                    s.add_clause([-p[(i1, j)], -p[(i2, j)]])
        assert s.solve() == UNSAT

    def test_pigeonhole_5_4_unsat(self):
        s = SatSolver()
        n, m = 5, 4
        p = {(i, j): s.new_var() for i in range(n) for j in range(m)}
        for i in range(n):
            s.add_clause([p[(i, j)] for j in range(m)])
        for j in range(m):
            for i1 in range(n):
                for i2 in range(i1 + 1, n):
                    s.add_clause([-p[(i1, j)], -p[(i2, j)]])
        assert s.solve() == UNSAT

    def test_xor_chain_sat(self):
        # x1 ^ x2 ^ ... chain encoded with clauses; forces propagation
        # through learned structure.
        s = SatSolver()
        n = 12
        xs = [s.new_var() for _ in range(n)]
        clauses = []
        for i in range(n - 1):
            a, b = xs[i], xs[i + 1]
            clauses += [[-a, -b], [a, b]]  # a != b
        for c in clauses:
            s.add_clause(list(c))
        s.add_clause([xs[0]])
        assert s.solve() == SAT
        for i in range(n):
            expected = i % 2 == 0
            assert s.value(xs[i]) is expected


class TestAssumptions:
    def test_assumptions_flip(self):
        s = SatSolver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        assert s.solve_with([-a]) == SAT
        assert s.value(b) is True
        assert s.solve_with([-b]) == SAT
        assert s.value(a) is True
        assert s.solve_with([-a, -b]) == UNSAT
        # Solver remains usable after an assumption-UNSAT answer.
        assert s.solve() == SAT

    def test_conflicting_assumption_with_unit(self):
        s = SatSolver()
        a = s.new_var()
        s.add_clause([a])
        assert s.solve_with([-a]) == UNSAT
        assert s.solve_with([a]) == SAT


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(15)] == [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_vars=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=80, deadline=None)
def test_random_3sat_matches_brute_force(seed, num_vars):
    rng = random.Random(seed)
    num_clauses = rng.randint(1, 4 * num_vars)
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(1, 3)
        lits = rng.sample(range(1, num_vars + 1), min(width, num_vars))
        clauses.append([v if rng.random() < 0.5 else -v for v in lits])
    expected = brute_force(num_vars, clauses)
    s = SatSolver()
    s.ensure_vars(num_vars)
    ok = True
    for c in clauses:
        ok = s.add_clause(list(c)) and ok
    result = s.solve() if ok else UNSAT
    assert (result == SAT) == expected
    if result == SAT:
        check_model(s, clauses)


def test_large_random_instance_completes():
    rng = random.Random(7)
    s = SatSolver()
    n = 120
    s.ensure_vars(n)
    for _ in range(int(3.5 * n)):
        lits = rng.sample(range(1, n + 1), 3)
        s.add_clause([v if rng.random() < 0.5 else -v for v in lits])
    assert s.solve() in (SAT, UNSAT)


def test_dimacs_export():
    from repro.smt.sat import to_dimacs

    s = SatSolver()
    a, b = s.new_var(), s.new_var()
    s.add_clause([a, b])
    s.add_clause([-a, b])
    text = to_dimacs(s)
    lines = text.strip().splitlines()
    assert lines[0] == "p cnf 2 2"
    assert lines[1] == "1 2 0"
    assert lines[2] == "-1 2 0"
