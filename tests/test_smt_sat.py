"""Unit and property tests for the CDCL SAT core.

Every test runs against both implementations — the reference
``SatSolver`` and the flat-arena ``ArenaSolver`` — via the
``solver_cls`` fixture, keeping the two semantically interchangeable.
"""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt.sat import SAT, ArenaSolver, SatSolver, UNSAT, luby

IMPLS = [SatSolver, ArenaSolver]


@pytest.fixture(params=IMPLS, ids=["legacy", "arena"])
def solver_cls(request):
    return request.param


def brute_force(num_vars: int, clauses: list[list[int]]) -> bool:
    for bits in itertools.product([False, True], repeat=num_vars):
        ok = True
        for clause in clauses:
            if not any(bits[abs(l) - 1] == (l > 0) for l in clause):
                ok = False
                break
        if ok:
            return True
    return False


def check_model(solver, clauses: list[list[int]]) -> None:
    for clause in clauses:
        assert any(solver.value(l) for l in clause), f"clause {clause} falsified"


class TestBasics:
    def test_unit_propagation(self, solver_cls):
        s = solver_cls()
        a, b, c = s.new_var(), s.new_var(), s.new_var()
        s.add_clause([a, b])
        s.add_clause([-a, c])
        s.add_clause([-c])
        assert s.solve() == SAT
        assert s.value(c) is False
        assert s.value(a) is False
        assert s.value(b) is True

    def test_empty_clause_unsat(self, solver_cls):
        s = solver_cls()
        a = s.new_var()
        s.add_clause([a])
        assert not s.add_clause([-a])
        assert s.solve() == UNSAT

    def test_trivial_sat(self, solver_cls):
        s = solver_cls()
        s.new_var()
        assert s.solve() == SAT

    def test_tautology_dropped(self, solver_cls):
        s = solver_cls()
        a = s.new_var()
        s.add_clause([a, -a])
        assert s.solve() == SAT

    def test_duplicate_literals(self, solver_cls):
        s = solver_cls()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, a, b])
        s.add_clause([-a])
        assert s.solve() == SAT
        assert s.value(b) is True

    def test_pigeonhole_3_2_unsat(self, solver_cls):
        # 3 pigeons, 2 holes: classic small UNSAT instance needing search.
        s = solver_cls()
        p = {(i, j): s.new_var() for i in range(3) for j in range(2)}
        for i in range(3):
            s.add_clause([p[(i, 0)], p[(i, 1)]])
        for j in range(2):
            for i1 in range(3):
                for i2 in range(i1 + 1, 3):
                    s.add_clause([-p[(i1, j)], -p[(i2, j)]])
        assert s.solve() == UNSAT

    def test_pigeonhole_5_4_unsat(self, solver_cls):
        s = solver_cls()
        n, m = 5, 4
        p = {(i, j): s.new_var() for i in range(n) for j in range(m)}
        for i in range(n):
            s.add_clause([p[(i, j)] for j in range(m)])
        for j in range(m):
            for i1 in range(n):
                for i2 in range(i1 + 1, n):
                    s.add_clause([-p[(i1, j)], -p[(i2, j)]])
        assert s.solve() == UNSAT

    def test_xor_chain_sat(self, solver_cls):
        # x1 ^ x2 ^ ... chain encoded with clauses; forces propagation
        # through learned structure.
        s = solver_cls()
        n = 12
        xs = [s.new_var() for _ in range(n)]
        clauses = []
        for i in range(n - 1):
            a, b = xs[i], xs[i + 1]
            clauses += [[-a, -b], [a, b]]  # a != b
        for c in clauses:
            s.add_clause(list(c))
        s.add_clause([xs[0]])
        assert s.solve() == SAT
        for i in range(n):
            expected = i % 2 == 0
            assert s.value(xs[i]) is expected


class TestAssumptions:
    def test_assumptions_flip(self, solver_cls):
        s = solver_cls()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        assert s.solve_with([-a]) == SAT
        assert s.value(b) is True
        assert s.solve_with([-b]) == SAT
        assert s.value(a) is True
        assert s.solve_with([-a, -b]) == UNSAT
        # Solver remains usable after an assumption-UNSAT answer.
        assert s.solve() == SAT

    def test_conflicting_assumption_with_unit(self, solver_cls):
        s = solver_cls()
        a = s.new_var()
        s.add_clause([a])
        assert s.solve_with([-a]) == UNSAT
        assert s.solve_with([a]) == SAT


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(15)] == [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]


@pytest.mark.parametrize("impl", IMPLS, ids=["legacy", "arena"])
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_vars=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=80, deadline=None)
def test_random_3sat_matches_brute_force(impl, seed, num_vars):
    rng = random.Random(seed)
    num_clauses = rng.randint(1, 4 * num_vars)
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(1, 3)
        lits = rng.sample(range(1, num_vars + 1), min(width, num_vars))
        clauses.append([v if rng.random() < 0.5 else -v for v in lits])
    expected = brute_force(num_vars, clauses)
    s = impl()
    s.ensure_vars(num_vars)
    ok = True
    for c in clauses:
        ok = s.add_clause(list(c)) and ok
    result = s.solve() if ok else UNSAT
    assert (result == SAT) == expected
    if result == SAT:
        check_model(s, clauses)


def test_implementations_agree_on_random_instances():
    # Direct cross-check: both cores must agree clause-for-clause,
    # including through assumption solves on the same instance.
    rng = random.Random(99)
    for _ in range(25):
        n = rng.randint(4, 20)
        clauses = []
        for _ in range(rng.randint(n, 4 * n)):
            lits = rng.sample(range(1, n + 1), min(3, n))
            clauses.append([v if rng.random() < 0.5 else -v for v in lits])
        verdicts = []
        for impl in IMPLS:
            s = impl()
            s.ensure_vars(n)
            ok = True
            for c in clauses:
                ok = s.add_clause(list(c)) and ok
            base = s.solve() if ok else UNSAT
            assumed = s.solve_with([1, -2]) if ok else UNSAT
            verdicts.append((base, assumed))
        assert verdicts[0] == verdicts[1], clauses


def test_large_random_instance_completes(solver_cls):
    rng = random.Random(7)
    s = solver_cls()
    n = 120
    s.ensure_vars(n)
    for _ in range(int(3.5 * n)):
        lits = rng.sample(range(1, n + 1), 3)
        s.add_clause([v if rng.random() < 0.5 else -v for v in lits])
    assert s.solve() in (SAT, UNSAT)


def test_dimacs_export(solver_cls):
    from repro.smt.sat import to_dimacs

    s = solver_cls()
    a, b = s.new_var(), s.new_var()
    s.add_clause([a, b])
    s.add_clause([-a, b])
    text = to_dimacs(s)
    lines = text.strip().splitlines()
    assert lines[0] == "p cnf 2 2"
    assert lines[1] == "1 2 0"
    assert lines[2] == "-1 2 0"
