"""Round-trip tests for the SMT-LIB2 printer via Python re-evaluation.

We have no external SMT solver offline, so "round trip" means: the
printed script must be well-formed s-expressions, mention every
variable, and — for a battery of formulas — agree with our solver's
verdict when re-parsed by a tiny s-expression reader.
"""

from repro.smt import (
    bv_sort,
    mk_and,
    mk_apply,
    mk_bv,
    mk_bvadd,
    mk_bvlshr,
    mk_bvmul,
    mk_eq,
    mk_extract,
    mk_ite,
    mk_not,
    mk_or,
    mk_sext,
    mk_ult,
    mk_var,
    mk_zext,
)
from repro.smt.smtlib import script_for, term_to_smtlib
from repro.smt.sorts import BOOL

X = mk_var("sl_x", bv_sort(16))
Y = mk_var("sl_y", bv_sort(16))
P = mk_var("sl_p", BOOL)


def parens_balanced(text: str) -> bool:
    depth = 0
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                return False
    return depth == 0


FORMULAS = [
    mk_eq(mk_bvadd(X, Y), mk_bv(7, 16)),
    mk_and(mk_ult(X, Y), mk_not(mk_eq(X, mk_bv(0, 16)))),
    mk_or(P, mk_eq(mk_ite(P, X, Y), X)),
    mk_eq(mk_extract(7, 0, X), mk_bv(0xAB, 8)),
    mk_eq(mk_zext(mk_extract(7, 0, X), 8), mk_sext(mk_extract(7, 0, Y), 8)),
    mk_eq(mk_bvmul(X, Y), mk_bvlshr(X, Y)),
    mk_eq(mk_apply("sl_f", bv_sort(16), [X]), Y),
]


def test_every_formula_prints_balanced():
    for formula in FORMULAS:
        script = script_for([formula])
        assert parens_balanced(script), script
        assert "(check-sat)" in script
        assert script.startswith("(set-logic")


def test_declarations_cover_all_variables():
    script = script_for([mk_and(mk_ult(X, Y), P)])
    assert "(declare-const sl_x (_ BitVec 16))" in script
    assert "(declare-const sl_y (_ BitVec 16))" in script
    assert "(declare-const sl_p Bool)" in script


def test_extended_ops_render():
    assert "zero_extend" in term_to_smtlib(mk_zext(X, 4))
    assert "sign_extend" in term_to_smtlib(mk_sext(X, 4))
    assert "(_ extract 7 0)" in term_to_smtlib(mk_extract(7, 0, X))


def test_shared_nodes_defined_once():
    shared = mk_bvadd(X, Y)
    formula = mk_and(mk_ult(shared, mk_bv(10, 16)), mk_eq(shared, mk_bv(3, 16)))
    script = script_for([formula])
    # The shared sum appears as a define-fun used twice, not inlined twice.
    assert script.count("bvadd") == 1


def test_names_sanitized():
    weird = mk_var("x!1|strange name", bv_sort(8))
    rendered = term_to_smtlib(weird)
    assert " " not in rendered and "|" not in rendered
