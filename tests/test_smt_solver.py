"""Tests for the solver frontend: push/pop, models, budgets, SMT-LIB dump."""

import pytest

from repro.smt import (
    Solver,
    bv_sort,
    check_sat,
    mk_and,
    mk_apply,
    mk_bv,
    mk_bvadd,
    mk_bvmul,
    mk_eq,
    mk_false,
    mk_not,
    mk_or,
    mk_true,
    mk_ult,
    mk_var,
)
from repro.smt.smtlib import script_for, term_to_smtlib

X = mk_var("fr_x", bv_sort(16))
Y = mk_var("fr_y", bv_sort(16))


class TestSolverFrontend:
    def test_sat_with_model(self):
        s = Solver()
        s.add(mk_eq(mk_bvadd(X, Y), mk_bv(100, 16)), mk_ult(X, mk_bv(5, 16)))
        r = s.check()
        assert r.is_sat
        assert (r.model["fr_x"] + r.model["fr_y"]) & 0xFFFF == 100
        assert r.model["fr_x"] < 5

    def test_unsat(self):
        s = Solver()
        s.add(mk_ult(X, mk_bv(5, 16)), mk_ult(mk_bv(10, 16), X))
        assert s.check().is_unsat

    def test_push_pop(self):
        s = Solver()
        s.add(mk_ult(X, mk_bv(5, 16)))
        s.push()
        s.add(mk_ult(mk_bv(10, 16), X))
        assert s.check().is_unsat
        s.pop()
        assert s.check().is_sat

    def test_pop_without_push_raises(self):
        with pytest.raises(RuntimeError):
            Solver().pop()

    def test_trivial_paths(self):
        s = Solver()
        s.add(mk_true())
        assert s.check().is_sat
        s.add(mk_false())
        assert s.check().is_unsat

    def test_non_bool_assertion_rejected(self):
        with pytest.raises(TypeError):
            Solver().add(X)

    def test_model_evaluate(self):
        s = Solver()
        s.add(mk_eq(X, mk_bv(42, 16)))
        r = s.check()
        assert r.model.evaluate(mk_bvadd(X, mk_bv(1, 16))) == 43

    def test_check_with_extra(self):
        s = Solver()
        s.add(mk_ult(X, mk_bv(5, 16)))
        assert s.check(mk_eq(X, mk_bv(3, 16))).is_sat
        assert s.check(mk_eq(X, mk_bv(9, 16))).is_unsat
        # extra does not persist
        assert s.check().is_sat

    def test_stats_populated(self):
        s = Solver()
        s.add(mk_eq(mk_bvmul(X, Y), mk_bv(391, 16)), mk_ult(mk_bv(1, 16), X), mk_ult(X, Y))
        r = s.check()
        assert r.is_sat
        assert r.stats["sat_vars"] > 0
        assert r.stats["time_s"] >= 0

    def test_unknown_on_budget(self):
        s = Solver(max_conflicts=1)
        # A hard-ish instance: 14-bit factoring.
        a = mk_var("fr_h1", bv_sort(14))
        b = mk_var("fr_h2", bv_sort(14))
        s.add(
            mk_eq(mk_bvmul(a, b), mk_bv(12007, 14)),
            mk_ult(mk_bv(2, 14), a),
            mk_ult(mk_bv(2, 14), b),
        )
        r = s.check()
        assert r.status in ("sat", "unsat", "unknown")


class TestSmtlibPrinter:
    def test_term_rendering(self):
        t = mk_and(mk_ult(X, Y), mk_eq(X, mk_bv(3, 16)))
        s = term_to_smtlib(t)
        assert "bvult" in s and "(_ bv3 16)" in s

    def test_script_roundtrip_syntax(self):
        f = mk_or(mk_eq(mk_bvadd(X, Y), mk_bv(1, 16)), mk_not(mk_eq(X, Y)))
        script = script_for([f])
        assert script.startswith("(set-logic")
        assert "(declare-const fr_x (_ BitVec 16))" in script
        assert script.rstrip().endswith("(check-sat)")
        assert script.count("(") == script.count(")")

    def test_script_with_uf(self):
        f = mk_eq(mk_apply("fr_f", bv_sort(16), [X]), Y)
        script = script_for([f])
        assert "(declare-fun fr_f ((_ BitVec 16)) (_ BitVec 16))" in script

    def test_shared_subterms_named(self):
        shared = mk_bvadd(X, Y)
        f = mk_and(mk_ult(shared, mk_bv(10, 16)), mk_not(mk_eq(shared, mk_bv(3, 16))))
        script = script_for([f])
        assert "define-fun aux!0" in script


def test_check_sat_helper():
    assert check_sat(mk_eq(X, Y)).is_sat
    assert check_sat(mk_eq(X, Y), mk_not(mk_eq(Y, X))).is_unsat
