"""Unit tests for term construction, interning, and constant folding."""

import pytest

from repro.smt import (
    BOOL,
    bv_sort,
    mk_and,
    mk_bool,
    mk_bv,
    mk_bvadd,
    mk_bvand,
    mk_bvashr,
    mk_bvlshr,
    mk_bvmul,
    mk_bvneg,
    mk_bvnot,
    mk_bvor,
    mk_bvshl,
    mk_bvsub,
    mk_bvudiv,
    mk_bvurem,
    mk_bvxor,
    mk_concat,
    mk_eq,
    mk_extract,
    mk_false,
    mk_implies,
    mk_ite,
    mk_not,
    mk_or,
    mk_sext,
    mk_slt,
    mk_true,
    mk_ule,
    mk_ult,
    mk_var,
    mk_xor,
    mk_zext,
    to_signed,
)


def bv8(v):
    return mk_bv(v, 8)


A = mk_var("term_a", bv_sort(8))
B = mk_var("term_b", bv_sort(8))
P = mk_var("term_p", BOOL)
Q = mk_var("term_q", BOOL)


class TestInterning:
    def test_same_construction_same_object(self):
        assert mk_bvadd(A, B) is mk_bvadd(A, B)

    def test_commutative_canonicalization(self):
        assert mk_bvand(A, B) is mk_bvand(B, A)
        assert mk_bvor(A, B) is mk_bvor(B, A)
        assert mk_bvxor(A, B) is mk_bvxor(B, A)
        assert mk_bvmul(A, B) is mk_bvmul(B, A)
        assert mk_eq(A, B) is mk_eq(B, A)

    def test_constants_interned(self):
        assert bv8(5) is bv8(5)
        assert mk_true() is mk_bool(True)


class TestBoolFolding:
    def test_not_not(self):
        assert mk_not(mk_not(P)) is P

    def test_and_identity(self):
        assert mk_and(P, mk_true()) is P
        assert mk_and(P, mk_false()) is mk_false()
        assert mk_and() is mk_true()
        assert mk_and(P, P) is P

    def test_and_complement(self):
        assert mk_and(P, mk_not(P)) is mk_false()

    def test_or_identity(self):
        assert mk_or(P, mk_false()) is P
        assert mk_or(P, mk_true()) is mk_true()
        assert mk_or(P, mk_not(P)) is mk_true()

    def test_and_flattening(self):
        inner = mk_and(P, Q)
        outer = mk_and(inner, mk_not(Q))
        assert outer is mk_false()

    def test_xor(self):
        assert mk_xor(P, P) is mk_false()
        assert mk_xor(P, mk_false()) is P
        assert mk_xor(P, mk_true()) is mk_not(P)

    def test_implies(self):
        assert mk_implies(mk_false(), P) is mk_true()
        assert mk_implies(mk_true(), P) is P

    def test_ite_folding(self):
        assert mk_ite(mk_true(), A, B) is A
        assert mk_ite(mk_false(), A, B) is B
        assert mk_ite(P, A, A) is A
        assert mk_ite(P, mk_true(), mk_false()) is P
        assert mk_ite(P, mk_false(), mk_true()) is mk_not(P)

    def test_ite_negated_condition(self):
        assert mk_ite(mk_not(P), A, B) is mk_ite(P, B, A)

    def test_nested_ite_same_condition(self):
        inner = mk_ite(P, A, B)
        assert mk_ite(P, inner, B) is inner
        # ite(p, a, ite(p, _, b)) == ite(p, a, b)
        assert mk_ite(P, A, mk_ite(P, B, bv8(3))) is mk_ite(P, A, bv8(3))


class TestEqFolding:
    def test_reflexive(self):
        assert mk_eq(A, A) is mk_true()

    def test_constants(self):
        assert mk_eq(bv8(3), bv8(3)) is mk_true()
        assert mk_eq(bv8(3), bv8(4)) is mk_false()

    def test_eq_over_ite_with_const(self):
        t = mk_ite(P, bv8(1), bv8(2))
        assert mk_eq(t, bv8(1)) is P
        assert mk_eq(t, bv8(2)) is mk_not(P)
        assert mk_eq(t, bv8(3)) is mk_false()

    def test_sort_mismatch_raises(self):
        with pytest.raises(TypeError):
            mk_eq(A, mk_bv(0, 16))


class TestArithFolding:
    def test_add(self):
        assert mk_bvadd(bv8(200), bv8(100)) is bv8(44)
        assert mk_bvadd(A, bv8(0)) is A

    def test_add_reassociation(self):
        t = mk_bvadd(mk_bvadd(A, bv8(3)), bv8(5))
        assert t is mk_bvadd(A, bv8(8))

    def test_sub(self):
        assert mk_bvsub(A, A) is bv8(0)
        assert mk_bvsub(A, bv8(0)) is A
        assert mk_bvsub(bv8(3), bv8(5)) is bv8(254)

    def test_sub_becomes_add_of_negated_const(self):
        assert mk_bvsub(A, bv8(1)) is mk_bvadd(A, bv8(255))

    def test_mul(self):
        assert mk_bvmul(A, bv8(0)) is bv8(0)
        assert mk_bvmul(A, bv8(1)) is A
        assert mk_bvmul(bv8(20), bv8(20)) is bv8(144)

    def test_mul_power_of_two_strength_reduction(self):
        assert mk_bvmul(A, bv8(8)) is mk_bvshl(A, bv8(3))

    def test_udiv_urem_by_constants(self):
        assert mk_bvudiv(bv8(10), bv8(3)) is bv8(3)
        assert mk_bvurem(bv8(10), bv8(3)) is bv8(1)
        assert mk_bvudiv(A, bv8(1)) is A
        assert mk_bvurem(A, bv8(1)) is bv8(0)
        assert mk_bvudiv(A, bv8(4)) is mk_bvlshr(A, bv8(2))
        assert mk_bvurem(A, bv8(4)) is mk_bvand(A, bv8(3))

    def test_div_by_zero_smtlib(self):
        assert mk_bvudiv(bv8(7), bv8(0)) is bv8(255)
        assert mk_bvurem(bv8(7), bv8(0)) is bv8(7)

    def test_neg_and_not(self):
        assert mk_bvneg(bv8(1)) is bv8(255)
        assert mk_bvnot(bv8(0)) is bv8(255)
        assert mk_bvnot(mk_bvnot(A)) is A


class TestShiftFolding:
    def test_shl(self):
        assert mk_bvshl(bv8(1), bv8(4)) is bv8(16)
        assert mk_bvshl(A, bv8(0)) is A
        assert mk_bvshl(A, bv8(8)) is bv8(0)
        assert mk_bvshl(A, bv8(255)) is bv8(0)

    def test_lshr(self):
        assert mk_bvlshr(bv8(0x80), bv8(7)) is bv8(1)
        assert mk_bvlshr(A, bv8(9)) is bv8(0)

    def test_ashr(self):
        assert mk_bvashr(bv8(0x80), bv8(7)) is bv8(0xFF)
        assert mk_bvashr(bv8(0x40), bv8(7)) is bv8(0)
        assert mk_bvashr(bv8(0x80), bv8(100)) is bv8(0xFF)


class TestStructural:
    def test_concat_extract(self):
        assert mk_concat(bv8(0xAB), bv8(0xCD)) is mk_bv(0xABCD, 16)
        assert mk_extract(7, 0, mk_bv(0xABCD, 16)) is bv8(0xCD)
        assert mk_extract(15, 8, mk_bv(0xABCD, 16)) is bv8(0xAB)

    def test_extract_full_width_is_identity(self):
        assert mk_extract(7, 0, A) is A

    def test_extract_of_extract(self):
        w16 = mk_var("term_w16", bv_sort(16))
        inner = mk_extract(11, 4, w16)
        assert mk_extract(3, 0, inner) is mk_extract(7, 4, w16)

    def test_extract_of_concat(self):
        both = mk_concat(A, B)
        assert mk_extract(7, 0, both) is B
        assert mk_extract(15, 8, both) is A

    def test_extract_of_zext(self):
        z = mk_zext(A, 8)
        assert mk_extract(7, 0, z) is A
        assert mk_extract(15, 8, z) is bv8(0)

    def test_zext_sext(self):
        assert mk_zext(bv8(0xFF), 8) is mk_bv(0xFF, 16)
        assert mk_sext(bv8(0xFF), 8) is mk_bv(0xFFFF, 16)
        assert mk_zext(A, 0) is A
        assert mk_zext(mk_zext(A, 4), 4) is mk_zext(A, 8)

    def test_extract_range_checks(self):
        with pytest.raises(ValueError):
            mk_extract(8, 0, A)
        with pytest.raises(ValueError):
            mk_extract(3, 5, A)


class TestComparisons:
    def test_ult_constants(self):
        assert mk_ult(bv8(3), bv8(4)) is mk_true()
        assert mk_ult(bv8(4), bv8(3)) is mk_false()
        assert mk_ult(A, bv8(0)) is mk_false()

    def test_ule_zero(self):
        assert mk_ule(bv8(0), A) is mk_true()

    def test_slt_signed(self):
        assert mk_slt(bv8(0xFF), bv8(0)) is mk_true()  # -1 < 0
        assert mk_slt(bv8(0), bv8(0xFF)) is mk_false()

    def test_reflexive(self):
        assert mk_ult(A, A) is mk_false()
        assert mk_ule(A, A) is mk_true()
        assert mk_slt(A, A) is mk_false()


class TestSignedHelpers:
    def test_to_signed(self):
        assert to_signed(0xFF, 8) == -1
        assert to_signed(0x7F, 8) == 127
        assert to_signed(0x80, 8) == -128
