"""The content-addressed verdict store (``repro.core.store``).

Covers the properties CI's two-job pipeline leans on: entries survive
an export/import round-trip byte-for-byte, and concurrent writers of
the same digest never produce a torn entry (atomic rename).
"""

import json
import multiprocessing
import os

import pytest

from repro.core.store import StoreLockedError, VerdictStore, main as store_main
from repro.smt import SAT, UNSAT, CheckResult, Model


def _digest(i: int) -> str:
    return f"{i:016x}"


def _populate(store: VerdictStore, count: int = 8) -> dict[str, dict]:
    """Store a mix of unsat and sat (with model) verdicts; return the
    expected raw entries keyed by digest."""
    expected = {}
    for i in range(count):
        digest = _digest(i)
        if i % 3 == 0:
            var_map = {f"x{i}": "c0"}
            result = CheckResult(SAT, Model({f"x{i}": i}))
            expected[digest] = {"status": "sat", "model": {"c0": i}}
        else:
            var_map = {}
            result = CheckResult(UNSAT)
            expected[digest] = {"status": "unsat"}
        store.store(digest, var_map, result)
    return expected


class TestExportImport:
    def test_round_trip(self, tmp_path):
        src = VerdictStore(str(tmp_path / "a"))
        expected = _populate(src)
        archive = str(tmp_path / "verdicts.tar.gz")
        assert src.export_archive(archive) == len(expected)

        dst = VerdictStore(str(tmp_path / "b"))
        assert dst.import_archive(archive) == len(expected)
        assert sorted(dst.digests()) == sorted(expected)
        for digest, entry in expected.items():
            assert dst._read_entry(digest) == entry
            # Sharded layout: <digest[:2]>/<digest>.json
            assert os.path.exists(
                os.path.join(dst.path, digest[:2], f"{digest}.json")
            )

    def test_import_skips_existing_entries(self, tmp_path):
        src = VerdictStore(str(tmp_path / "a"))
        expected = _populate(src)
        archive = str(tmp_path / "verdicts.tar.gz")
        src.export_archive(archive)

        dst = VerdictStore(str(tmp_path / "b"))
        first = list(expected)[0]
        local = {"status": "unsat", "local": True}
        os.makedirs(os.path.join(dst.path, first[:2]), exist_ok=True)
        with open(os.path.join(dst.path, first[:2], f"{first}.json"), "w") as handle:
            json.dump(local, handle)

        imported = dst.import_archive(archive)
        assert imported == len(expected) - 1
        assert dst._read_entry(first) == local  # not clobbered

    def test_summary_counts_by_status(self, tmp_path):
        store = VerdictStore(str(tmp_path / "s"))
        expected = _populate(store)
        summary = store.summary()
        assert summary["entries"] == len(expected)
        sat = sum(1 for e in expected.values() if e["status"] == "sat")
        assert summary["by_status"] == {"sat": sat, "unsat": len(expected) - sat}


DIGEST = "ab" + "0" * 14


def _hammer(path: str, worker: int, rounds: int) -> None:
    """Write the same digest over and over with a worker-specific model."""
    store = VerdictStore(path)
    for i in range(rounds):
        result = CheckResult(SAT, Model({"x": worker * 10_000 + i}))
        store.store(DIGEST, {"x": "c0"}, result)


class TestConcurrentWriters:
    def test_two_processes_same_digest_never_torn(self, tmp_path):
        """Two processes repeatedly storing the same digest while the
        parent reads: every observed entry is complete, valid JSON from
        one writer or the other (atomic rename, no locking)."""
        path = str(tmp_path / "shared")
        reader = VerdictStore(path)
        ctx = multiprocessing.get_context("fork")
        rounds = 200
        procs = [
            ctx.Process(target=_hammer, args=(path, worker, rounds))
            for worker in (1, 2)
        ]
        for p in procs:
            p.start()
        observed = 0
        try:
            while any(p.is_alive() for p in procs):
                entry = reader._read_entry(DIGEST)
                if entry is not None:
                    # A torn write would fail json parsing inside
                    # _read_entry (returning None is only legal before
                    # the first write completes) or produce a value no
                    # writer stored.
                    assert entry["status"] == "sat"
                    value = entry["model"]["c0"]
                    assert value in range(10_000, 10_000 + rounds) or value in range(
                        20_000, 20_000 + rounds
                    )
                    observed += 1
        finally:
            for p in procs:
                p.join(timeout=30)
        assert all(p.exitcode == 0 for p in procs)
        assert observed > 0
        final = reader._read_entry(DIGEST)
        assert final["status"] == "sat"
        # Exactly one file, in the sharded location, no leftover temps.
        shard = os.path.join(path, DIGEST[:2])
        assert os.listdir(shard) == [f"{DIGEST}.json"]
        assert not [f for f in os.listdir(path) if f.endswith(".tmp")]


class TestImportLock:
    """Bulk imports are mutually exclusive via an advisory flock, so two
    concurrent ``store import`` processes cannot interleave their shard
    scans (flock conflicts across file descriptors, so a second handle
    in this process stands in for a second process)."""

    @pytest.fixture(autouse=True)
    def _needs_flock(self):
        pytest.importorskip("fcntl")

    def _archive(self, tmp_path):
        src = VerdictStore(str(tmp_path / "src"))
        expected = _populate(src)
        archive = str(tmp_path / "verdicts.tar.gz")
        src.export_archive(archive)
        return archive, expected

    def test_concurrent_import_refused_without_wait(self, tmp_path):
        archive, expected = self._archive(tmp_path)
        dst = VerdictStore(str(tmp_path / "dst"))
        holder = VerdictStore(dst.path)
        with holder.import_lock():
            with pytest.raises(StoreLockedError, match="retry or pass --wait"):
                dst.import_archive(archive)
        # Lock released: the retry goes through, nothing was half-merged.
        assert dst.import_archive(archive) == len(expected)
        assert sorted(dst.digests()) == sorted(expected)

    def test_wait_blocks_until_released(self, tmp_path):
        archive, expected = self._archive(tmp_path)
        dst = VerdictStore(str(tmp_path / "dst"))
        # No competing holder: wait=True acquires immediately.
        assert dst.import_archive(archive, wait=True) == len(expected)

    def test_cli_import_exits_3_when_locked(self, tmp_path, capsys):
        archive, expected = self._archive(tmp_path)
        dst = VerdictStore(str(tmp_path / "dst"))
        holder = VerdictStore(dst.path)
        with holder.import_lock():
            assert store_main(["--store", dst.path, "import", archive]) == 3
        assert "retry or pass --wait" in capsys.readouterr().err
        assert store_main(["--store", dst.path, "import", archive]) == 0
        assert sorted(dst.digests()) == sorted(expected)


class TestSpoolReporting:
    """Remote write-back markers (``.remote-spool/``) are surfaced by
    every maintenance walk, never silently skipped."""

    def _store_with_spool(self, tmp_path):
        store = VerdictStore(str(tmp_path / "s"))
        expected = _populate(store)
        os.makedirs(store.spool_dir, exist_ok=True)
        spooled = list(expected)[:2]
        for digest in spooled:
            with open(os.path.join(store.spool_dir, f"{digest}.json"), "w") as handle:
                json.dump({"digest": digest}, handle)
        # Junk in the spool directory is not a pending flush.
        with open(os.path.join(store.spool_dir, "noise.tmp"), "w") as handle:
            handle.write("x")
        return store, expected, spooled

    def test_summary_and_index_count_pending(self, tmp_path):
        store, expected, spooled = self._store_with_spool(tmp_path)
        assert store.spool_pending() == sorted(spooled)
        assert store.summary()["spool_pending"] == len(spooled)
        assert store.write_index()["spool_pending"] == len(spooled)
        assert store.summary()["entries"] == len(expected)  # markers not entries

    def test_gc_drops_markers_with_their_entries(self, tmp_path):
        store, expected, spooled = self._store_with_spool(tmp_path)
        assert store.gc(keep=0) == len(expected)
        # A collected entry can never be flushed: its marker went too.
        assert store.spool_pending() == []

    def test_export_leaves_spool_out_of_the_archive(self, tmp_path):
        store, expected, spooled = self._store_with_spool(tmp_path)
        archive = str(tmp_path / "out.tar.gz")
        assert store.export_archive(archive) == len(expected)
        dst = VerdictStore(str(tmp_path / "dst"))
        assert dst.import_archive(archive) == len(expected)
        # Pending flushes are a per-machine obligation, not payload.
        assert dst.spool_pending() == []

    def test_cli_reports_backlog(self, tmp_path, capsys):
        store, expected, spooled = self._store_with_spool(tmp_path)
        archive = str(tmp_path / "out.tar.gz")
        assert store_main(["--store", store.path, "export", archive]) == 0
        assert "2 entries still spooled for remote write-back" in capsys.readouterr().out
        stats = store_main(["--store", store.path, "stats"])
        assert stats == 0
        assert json.loads(capsys.readouterr().out)["spool_pending"] == 2


class TestVanishTolerance:
    """Maintenance walks must tolerate entries vanishing mid-scan (a
    concurrent gc or importer): skip, never raise."""

    def _store_with_ghost(self, tmp_path, monkeypatch):
        store = VerdictStore(str(tmp_path / "s"))
        expected = _populate(store)
        ghost = "ff" * 8
        real_digests = list(expected)
        monkeypatch.setattr(store, "digests", lambda: real_digests + [ghost])
        return store, expected

    def test_summary_skips_vanished_entries(self, tmp_path, monkeypatch):
        store, expected = self._store_with_ghost(tmp_path, monkeypatch)
        summary = store.summary()
        assert summary["entries"] == len(expected)

    def test_write_index_skips_vanished_entries(self, tmp_path, monkeypatch):
        store, expected = self._store_with_ghost(tmp_path, monkeypatch)
        index = store.write_index()
        assert index["entries"] == len(expected)
        assert sorted(index["rows"]) == sorted(expected)

    def test_export_and_gc_skip_vanished_entries(self, tmp_path, monkeypatch):
        store, expected = self._store_with_ghost(tmp_path, monkeypatch)
        archive = str(tmp_path / "out.tar.gz")
        assert store.export_archive(archive) == len(expected)
        assert store.gc(keep=len(expected)) == 0
