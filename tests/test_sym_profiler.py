"""Tests for the symbolic profiler and the verify/solve API details."""

import pytest

from repro.smt import EvalError, eval_term, mk_var
from repro.smt.sorts import bv_sort
from repro.sym import (
    Union,
    active_profiler,
    bv_val,
    fresh_bool,
    fresh_bv,
    merge,
    new_context,
    profile,
    prove,
    region,
    verify_vcs,
)


class TestProfiler:
    def test_inactive_by_default(self):
        assert active_profiler() is None
        with region("nowhere") as stats:
            assert stats is None

    def test_counts_terms_in_region(self):
        with profile() as prof:
            with region("work"):
                a = fresh_bv("pr_a", 8)
                _ = a + 1 + 2 + 3
        assert prof.regions["work"].terms > 0
        assert prof.regions["work"].calls == 1

    def test_nested_regions_both_credited(self):
        with profile() as prof:
            with region("outer"):
                with region("inner"):
                    _ = fresh_bv("pr_b", 8) ^ 0x55
        assert prof.regions["inner"].terms > 0
        assert prof.regions["outer"].terms >= prof.regions["inner"].terms

    def test_merge_and_union_tracking(self):
        with profile() as prof:
            with region("merging"):
                c1, c2 = fresh_bool("pr_c"), fresh_bool("pr_c2")
                u = merge(c1, "a", "b")  # incompatible -> union
                merge(c2, u, "c")  # growing union observed by the hook
        stats = prof.regions["merging"]
        assert stats.merges >= 2
        assert stats.max_union >= 2

    def test_ranking_orders_by_score(self):
        with profile() as prof:
            with region("hot"):
                x = fresh_bv("pr_d", 8)
                for i in range(50):
                    x = x + i
            with region("cold"):
                pass
        ranking = prof.ranking()
        assert ranking[0].name == "hot"

    def test_report_renders(self):
        with profile() as prof:
            with region("r1"):
                _ = fresh_bv("pr_e", 8) + 1
        report = prof.report()
        assert "r1" in report and "score" in report

    def test_hooks_restored_after_profile(self):
        from repro.smt import manager

        before = manager.on_new_term
        with profile():
            pass
        assert manager.on_new_term is before


class TestVerifyVcsDetails:
    def test_failed_vc_identified_among_many(self):
        with new_context() as ctx:
            a = fresh_bv("pv_a", 8)
            ctx.assert_prop((a & 0x80) <= 0x80, "fine one")
            ctx.assert_prop(a < 10, "broken one")
            ctx.assert_prop(a.udiv(2) <= a, "fine two")
            result = verify_vcs(ctx)
        assert not result.proved
        assert result.failed_vc.message == "broken one"

    def test_budget_gives_unknown(self):
        with new_context() as ctx:
            x = fresh_bv("pv_x", 24)
            y = fresh_bv("pv_y", 24)
            # A hard multiplication identity to starve a 1-conflict budget.
            ctx.assert_prop(x * y == y * x, "commutativity")
            result = verify_vcs(ctx, max_conflicts=1)
        assert result.proved or result.unknown

    def test_empty_context_proves(self):
        with new_context() as ctx:
            assert verify_vcs(ctx).proved


class TestEvaluatorErrors:
    def test_missing_variable(self):
        with pytest.raises(EvalError):
            eval_term(mk_var("missing_one", bv_sort(8)), {})

    def test_uf_default_and_callable(self):
        from repro.smt import mk_apply

        t = mk_apply("pe_f", bv_sort(8), [bv_val(3, 8).term])
        assert eval_term(t, {}) == 0  # unconstrained defaults to 0
        assert eval_term(t, {"pe_f": lambda x: x + 1}) == 4


class TestUnionApi:
    def test_union_map_remerges(self):
        c = fresh_bool("pu_c")
        u = merge(c, "left", "right")
        assert isinstance(u, Union)
        out = u.map(lambda v: bv_val(1 if v == "left" else 2, 8))
        assert prove((out == 1) | (out == 2)).proved
