"""Tests for the symbolic-value layer (repro.sym)."""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.smt import eval_term
from repro.sym import (
    SymbolicBranchError,
    Union,
    bv_val,
    fresh_bool,
    fresh_bv,
    ite,
    merge,
    merge_states,
    named_bv,
    new_context,
    prove,
    solve,
    sym_false,
    sym_or,
    sym_true,
    verify_vcs,
)


class TestSymBV:
    def test_concrete_arithmetic(self):
        a = bv_val(10, 8)
        assert (a + 5).as_int() == 15
        assert (a - 11).as_int() == 255
        assert (a * 3).as_int() == 30
        assert (a << 4).as_int() == 160
        assert (a >> 1).as_int() == 5
        assert (~a).as_int() == 245
        assert (-a).as_int() == 246

    def test_reverse_operators(self):
        a = bv_val(10, 8)
        assert (5 + a).as_int() == 15
        assert (5 - a).as_int() == 251
        assert (3 * a).as_int() == 30

    def test_comparisons_unsigned_by_default(self):
        big = bv_val(0xFF, 8)
        small = bv_val(1, 8)
        assert (small < big).as_bool()
        assert not big.slt(small).as_bool() is False or True  # signed: -1 < 1
        assert big.slt(small).as_bool()  # -1 < 1 signed

    def test_branching_on_symbolic_raises(self):
        a = fresh_bv("tv_a", 8)
        with pytest.raises(SymbolicBranchError):
            bool(a == 0)
        with pytest.raises(SymbolicBranchError):
            bool(a)
        with pytest.raises(SymbolicBranchError):
            a.as_int()

    def test_branching_on_concrete_ok(self):
        assert bool(bv_val(1, 8) == 1)
        assert not bool(bv_val(1, 8) == 2)

    def test_width_mismatch_rejected(self):
        a = bv_val(1, 8)
        b = bv_val(1, 16)
        with pytest.raises(TypeError):
            a + b

    def test_resize(self):
        a = bv_val(0x80, 8)
        assert a.zext(16).as_int() == 0x80
        assert a.sext(16).as_int() == 0xFF80
        assert bv_val(0x1234, 16).trunc(8).as_int() == 0x34
        assert a.resize(16).as_int() == 0x80
        assert a.resize(16, signed=True).as_int() == 0xFF80
        assert a.resize(8) is a

    def test_named_bv_stable(self):
        assert named_bv("tv_stable", 8).term is named_bv("tv_stable", 8).term


class TestIteMerge:
    def test_ite_concrete_guard(self):
        a, b = bv_val(1, 8), bv_val(2, 8)
        assert ite(sym_true(), a, b) is a
        assert ite(sym_false(), a, b) is b

    def test_ite_symbolic(self):
        c = fresh_bool("tv_c")
        x = ite(c, bv_val(1, 8), bv_val(2, 8))
        assert not x.is_concrete
        assert prove(sym_or(x == 1, x == 2)).proved

    def test_merge_lists(self):
        c = fresh_bool("tv_c2")
        out = merge(c, [bv_val(1, 8), bv_val(2, 8)], [bv_val(1, 8), bv_val(3, 8)])
        assert out[0].as_int() == 1  # identical values stay concrete
        assert not out[1].is_concrete

    def test_merge_dicts(self):
        c = fresh_bool("tv_c3")
        out = merge(c, {"x": bv_val(1, 8)}, {"x": bv_val(2, 8)})
        assert prove(sym_or(out["x"] == 1, out["x"] == 2)).proved

    def test_merge_int_same(self):
        c = fresh_bool("tv_c4")
        assert merge(c, 5, 5) == 5

    def test_merge_distinct_ints_rejected(self):
        c = fresh_bool("tv_c5")
        with pytest.raises(TypeError):
            merge(c, 5, 6)

    def test_union_of_incompatible(self):
        c = fresh_bool("tv_c6")
        u = merge(c, "insn_a", "insn_b")
        assert isinstance(u, Union)
        assert len(u) == 2

    def test_union_flattening(self):
        c1, c2 = fresh_bool("tv_c7"), fresh_bool("tv_c8")
        u1 = merge(c1, "a", "b")
        u2 = merge(c2, u1, "c")
        assert isinstance(u2, Union)
        assert len(u2) == 3

    def test_merge_states_objects(self):
        class S:
            def __init__(self, x):
                self.x = x

        c = fresh_bool("tv_c9")
        merged = merge_states(c, S(bv_val(1, 8)), S(bv_val(2, 8)))
        assert prove(sym_or(merged.x == 1, merged.x == 2)).proved


class TestContextVCs:
    def test_bug_on_unconditional_fails(self):
        with new_context() as ctx:
            a = fresh_bv("tv_vc", 8)
            ctx.bug_on(a == 255, "overflow case")
            result = verify_vcs(ctx)
        assert not result.proved
        assert result.failed_vc.message == "overflow case"
        assert result.counterexample is not None

    def test_bug_on_under_path_guard(self):
        with new_context() as ctx:
            a = fresh_bv("tv_vc2", 8)
            with ctx.under(a < 10):
                ctx.bug_on(a == 255, "overflow case")
            assert verify_vcs(ctx).proved

    def test_assert_prop(self):
        with new_context() as ctx:
            a = fresh_bv("tv_vc3", 8)
            ctx.assert_prop((a & 1) <= 1, "low bit bounded")
            assert verify_vcs(ctx).proved

    def test_nested_contexts_isolated(self):
        with new_context() as outer:
            a = fresh_bv("tv_vc4", 8)
            with new_context() as inner:
                inner.bug_on(a == 0, "inner only")
            assert outer.vcs == []
            assert len(inner.vcs) == 1

    def test_trivially_true_vcs_skipped(self):
        with new_context() as ctx:
            ctx.assert_prop(sym_true(), "trivial")
            assert ctx.vcs == []
            assert verify_vcs(ctx).proved


class TestSolveProve:
    def test_solve_returns_model(self):
        a = fresh_bv("tv_s", 8)
        model = solve(a * a == 49, a < 100)
        assert model is not None
        v = model[a.term.payload]
        assert (v * v) & 0xFF == 49

    def test_solve_unsat_returns_none(self):
        a = fresh_bv("tv_s2", 8)
        assert solve(a < 5, a > 10) is None

    def test_prove_with_assumptions(self):
        a = fresh_bv("tv_s3", 8)
        assert prove(a < 16, assumptions=[a < 10]).proved
        assert not prove(a < 5, assumptions=[a < 10]).proved


@given(x=st.integers(min_value=0, max_value=255), y=st.integers(min_value=0, max_value=255))
@settings(max_examples=40, deadline=None)
def test_symbv_ops_match_eval(x, y):
    a, b = named_bv("tv_hx", 8), named_bv("tv_hy", 8)
    env = {"tv_hx": x, "tv_hy": y}
    assert eval_term((a + b).term, env) == (x + y) & 0xFF
    assert eval_term((a ^ b).term, env) == x ^ y
    assert eval_term((a.udiv(b)).term, env) == (0xFF if y == 0 else x // y)
    assert eval_term((a == b).term, env) == (x == y)
    assert eval_term(a.slt(b).term, env) == (
        (x - 256 if x >= 128 else x) < (y - 256 if y >= 128 else y)
    )
