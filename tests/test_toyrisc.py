"""Tests for ToyRISC (§3.2-§3.3): emulation, lifting, refinement,
noninterference, profiling, and the ablations."""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.core import EngineOptions, run_interpreter, theorem
from repro.core.errors import EngineFuelExhausted, UnconstrainedPc
from repro.sym import bv_val, new_context, profile, prove, sym_eq, verify_vcs
from repro.toyrisc import (
    ToyCpu,
    ToyRISC,
    bnez,
    li,
    make_state_type,
    prove_sign_refinement,
    ret,
    sgtz,
    sign_program,
    sltz,
    spec_sign,
    step_consistency_holds,
)

W = 32


def run_concrete(program, a0, a1=0, width=W):
    cpu = ToyCpu(bv_val(0, width), [bv_val(a0, width), bv_val(a1, width)])
    with new_context():
        return run_interpreter(ToyRISC(program), cpu).merged()


def sign_ref(v, width=W):
    signed = v - (1 << width) if v >= (1 << (width - 1)) else v
    if signed > 0:
        return 1
    if signed < 0:
        return (1 << width) - 1
    return 0


class TestEmulation:
    @given(a0=st.integers(min_value=0, max_value=2**W - 1))
    @settings(max_examples=30, deadline=None)
    def test_sign_program_concrete(self, a0):
        final = run_concrete(sign_program(), a0)
        assert final.regs[0].as_int() == sign_ref(a0)
        assert final.pc.as_int() == 0

    def test_paper_example_values(self):
        # "running it with the code in Figure 3 and pc=0, a0=42, a1=0
        # results in pc=0, a0=1, a1=0"
        final = run_concrete(sign_program(), 42)
        assert final.regs[0].as_int() == 1
        assert final.regs[1].as_int() == 0

    def test_li_negative_immediate(self):
        final = run_concrete([li("a0", -1), ret()], 5)
        assert final.regs[0].as_int() == 2**W - 1

    def test_bnez_taken_and_not(self):
        prog = [bnez("a0", 3), li("a1", 10), ret(), li("a1", 20), ret()]
        assert run_concrete(prog, 0).regs[1].as_int() == 10
        assert run_concrete(prog, 1).regs[1].as_int() == 20


class TestLifting:
    def test_symbolic_run_covers_both_paths(self):
        with new_context():
            cpu = ToyCpu.symbolic(W)
            a0 = cpu.regs[0]
            paths = run_interpreter(ToyRISC(sign_program()), cpu)
            final = paths.merged()
            # final a0 equals the functional spec's sign.
            want = spec_sign(type("S", (), {"a0": a0, "a1": cpu.regs[1], "width": W})())
        assert prove(sym_eq(final.regs[0], want.a0)).proved

    def test_out_of_bounds_pc_flagged(self):
        # bnez jumps past the end of the program.
        prog = [bnez("a0", 9), ret()]
        with new_context() as ctx:
            cpu = ToyCpu.symbolic(W)
            with pytest.raises(Exception):
                # fetch at pc=9 raises IndexError through bug_on check
                # or the VC records it; accept either failure mode.
                paths = run_interpreter(ToyRISC(prog), cpu)
                result = verify_vcs(ctx)
                assert not result.proved
                raise AssertionError("vc failed as expected")

    def test_state_merging_bounds_path_count(self):
        # A program with two diamonds: merging keeps finals at 1 entry
        # per exit, not 4.
        prog = [
            bnez("a0", 2),
            li("a1", 1),
            bnez("a1", 4),
            li("a1", 2),
            ret(),
        ]
        with new_context():
            cpu = ToyCpu.symbolic(W)
            paths = run_interpreter(ToyRISC(prog), cpu)
            assert len(paths.finals) == 1
            assert paths.steps <= 8


class TestRefinement:
    def test_sign_refinement_proves(self):
        assert prove_sign_refinement(W).proved

    def test_sign_refinement_64bit(self):
        assert prove_sign_refinement(64).proved

    def test_path_enumeration_also_proves(self):
        assert prove_sign_refinement(W, EngineOptions(merge_states=False)).proved

    def test_buggy_program_fails_refinement(self):
        """Flip sgtz to sltz: the counterexample must expose it."""
        from repro.core import Refinement
        from repro.toyrisc.spec import abstract, rep_invariant

        broken = [
            sltz("a1", "a0"),
            bnez("a1", 4),
            sltz("a0", "a0"),  # BUG: should be sgtz
            ret(),
            li("a0", -1),
            ret(),
        ]
        interp = ToyRISC(broken)

        def impl_step(state):
            return run_interpreter(interp, state).merged()

        result = Refinement(
            name="toyrisc.broken",
            make_impl=lambda: ToyCpu.symbolic(W),
            impl_step=impl_step,
            spec_step=spec_sign,
            abstract=abstract,
            rep_invariant=rep_invariant,
        ).prove()
        assert not result.proved
        assert result.counterexample is not None


class TestSafetyAndNI:
    def test_step_consistency(self):
        assert step_consistency_holds(W).proved

    def test_leaky_spec_fails_step_consistency(self):
        """A spec whose result depends on a1 violates the unwinding
        relation that filters a1 out."""
        cls = make_state_type(W)

        def leaky(s):
            out = cls.__new__(cls)
            out.a0 = s.a0 + s.a1  # leaks a1
            out.a1 = s.a1
            return out

        def prop(s1, s2):
            pre = sym_eq(s1.a0, s2.a0)
            post = sym_eq(leaky(s1).a0, leaky(s2).a0)
            return pre.implies(post)

        assert not theorem("toyrisc.leaky", prop, cls, cls).proved


class TestAblations:
    def test_no_split_pc_blows_up(self):
        """Without split-pc the merged evaluation explodes (§6.4: the
        refinement proof times out).  We bound it with fuel and expect
        the blow-up signal rather than completion."""
        with new_context():
            cpu = ToyCpu.symbolic(W)
            with pytest.raises((EngineFuelExhausted, UnconstrainedPc)):
                run_interpreter(
                    ToyRISC(sign_program()),
                    cpu,
                    EngineOptions(split_pc=False, fuel=4, max_union=100),
                )

    def test_profiler_flags_fetch_without_split_pc(self):
        """§3.2: profiling the verifier without split-pc ranks fetch
        (vector-ref) as a bottleneck."""
        with profile() as prof:
            with new_context():
                cpu = ToyCpu.symbolic(W)
                try:
                    run_interpreter(
                        ToyRISC(sign_program()),
                        cpu,
                        EngineOptions(split_pc=False, fuel=3, max_union=1000),
                    )
                except EngineFuelExhausted:
                    pass
        names = [s.name for s in prof.ranking()]
        assert "toyrisc.fetch" in names or "toyrisc.execute" in names
        report = prof.report()
        assert "region" in report

    def test_profiler_quiet_with_split_pc(self):
        with profile() as prof:
            with new_context():
                cpu = ToyCpu.symbolic(W)
                run_interpreter(ToyRISC(sign_program()), cpu)
        fetch = prof.regions.get("toyrisc.fetch")
        assert fetch is not None
        assert fetch.max_union == 0  # no instruction unions created
