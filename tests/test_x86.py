"""Tests for the x86-32 verifier: ALU/flags/shift semantics."""

from repro.sym import bv_val, new_context, prove, sym_implies
from repro.x86 import X86State, mk, run_insns


def state_with(**regs) -> X86State:
    s = X86State.symbolic("tx")
    names = {"eax": 0, "ecx": 1, "edx": 2, "ebx": 3, "esi": 6, "edi": 7}
    for name, val in regs.items():
        s.regs[names[name]] = bv_val(val, 32)
    return s


def run(prog, **regs):
    with new_context():
        return run_insns(prog, state_with(**regs))


class TestAluAndFlags:
    def test_add_adc_pair_is_64bit_add(self):
        # (edx:eax) += (ecx:ebx) with carry propagation
        final = run(
            [mk("add", dst="eax", src="ebx"), mk("adc", dst="edx", src="ecx")],
            eax=0xFFFFFFFF, edx=0, ebx=1, ecx=0,
        )
        assert final.regs[0].as_int() == 0
        assert final.regs[2].as_int() == 1  # carry propagated

    def test_sub_sbb_pair_is_64bit_sub(self):
        final = run(
            [mk("sub", dst="eax", src="ebx"), mk("sbb", dst="edx", src="ecx")],
            eax=0, edx=1, ebx=1, ecx=0,
        )
        assert final.regs[0].as_int() == 0xFFFFFFFF
        assert final.regs[2].as_int() == 0  # borrow consumed

    def test_logic_clears_cf(self):
        final = run(
            [mk("add", dst="eax", src="ebx"), mk("and", dst="eax", src="ecx")],
            eax=0xFFFFFFFF, ebx=1, ecx=0xFF,
        )
        assert final.cf.as_bool() is False

    def test_neg(self):
        final = run([mk("neg", dst="eax")], eax=5)
        assert final.regs[0].as_int() == (-5) & 0xFFFFFFFF
        assert final.cf.as_bool() is True

    def test_mov_imm_and_reg(self):
        final = run([mk("mov", dst="eax", imm=0x1234), mk("mov", dst="ebx", src="eax")])
        assert final.regs[3].as_int() == 0x1234


class TestShifts:
    def test_shl_shr_sar(self):
        final = run(
            [mk("shl", dst="eax", imm=4), mk("shr", dst="ebx", imm=4), mk("sar", dst="ecx", imm=4)],
            eax=1, ebx=0x80000000, ecx=0x80000000,
        )
        assert final.regs[0].as_int() == 16
        assert final.regs[3].as_int() == 0x08000000
        assert final.regs[1].as_int() == 0xF8000000

    def test_shift_count_masked_to_5_bits(self):
        # x86: shl by 32 is a no-op (count masked) — the behaviour the
        # buggy 64-bit LSH-by-32 path relied on incorrectly.
        final = run([mk("shl", dst="eax", imm=32)], eax=7)
        assert final.regs[0].as_int() == 7

    def test_shld_shrd(self):
        final = run(
            [mk("shld", dst="edx", src="eax", imm=8)],
            edx=0x00000001, eax=0xAB000000,
        )
        assert final.regs[2].as_int() == 0x000001AB
        final = run(
            [mk("shrd", dst="eax", src="edx", imm=8)],
            eax=0x000000AB, edx=0x00000001,
        )
        assert final.regs[0].as_int() == 0x01000000

    def test_cl_variant(self):
        final = run([mk("shl", dst="eax")], eax=1, ecx=5)
        assert final.regs[0].as_int() == 32


class TestMemoryAndBranches:
    def test_stack_slots(self):
        prog = [
            mk("mov_to_mem", mem=("ebp", 8), src="eax"),
            mk("mov", dst="ebx", mem=("ebp", 8)),
        ]
        final = run(prog, eax=0xCAFE)
        assert final.regs[3].as_int() == 0xCAFE

    def test_conditional_jump(self):
        prog = [
            mk("cmp", dst="eax", src="ebx"),
            mk("je", target=3),
            mk("mov", dst="ecx", imm=1),
            mk("mov", dst="edx", imm=2),
        ]
        final = run(prog, eax=5, ebx=5, ecx=0, edx=0)
        assert final.regs[1].as_int() != 1  # skipped
        assert final.regs[2].as_int() == 2
        final = run(prog, eax=5, ebx=6, ecx=0, edx=0)
        assert final.regs[1].as_int() == 1

    def test_symbolic_branch_merges(self):
        prog = [
            mk("cmp", dst="eax", src="ebx"),
            mk("jb", target=3),
            mk("mov", dst="ecx", imm=1),
            mk("mov", dst="edx", imm=2),
        ]
        with new_context():
            s = X86State.symbolic("txs")
            a, b = s.regs[0], s.regs[3]
            final = run_insns(prog, s)
            assert prove(sym_implies(a >= b, final.regs[1] == 1)).proved
